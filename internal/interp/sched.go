package interp

import (
	"runtime"
	"sync"
	"sync/atomic"

	"gdsx/internal/ast"
	"gdsx/internal/obs"
)

// SchedPolicy selects how parallel-loop iterations are dispatched to
// the simulated threads.
type SchedPolicy int

const (
	// SchedStealing (the default) runs DOALL loops on a work-stealing
	// scheduler: each worker starts with the contiguous chunk static
	// scheduling would give it, consumes it from the front in
	// grain-sized pieces, and — once out of work — steals the upper
	// half of a victim's remaining range, always choosing the lowest
	// range that still lies above its own last executed iteration.
	// That floor keeps every thread's executed iterations strictly
	// increasing under any interleaving, which the guard monitor's
	// replay relies on: same-thread accesses are serialized in
	// iteration order, exactly as under static scheduling. DOACROSS
	// loops self-schedule chunked grabs from a shared counter (chunk
	// size Options.DispatchChunk, default 1), entering ordered
	// sections in iteration order exactly as before.
	SchedStealing SchedPolicy = iota
	// SchedStatic is the pre-stealing scheduler: contiguous static
	// chunks for every parallel loop (with DOACROSS ordered sections
	// still entered in iteration order via tickets).
	SchedStatic
	// SchedDynamic self-schedules every parallel loop from a shared
	// counter in DispatchChunk-sized grabs (the pre-stealing DOACROSS
	// scheduler, applied to DOALL too).
	SchedDynamic
)

func (p SchedPolicy) String() string {
	switch p {
	case SchedStatic:
		return "static"
	case SchedDynamic:
		return "dynamic"
	}
	return "stealing"
}

// SchedFromString parses a scheduler name ("stealing", "static",
// "dynamic", or "" for the default).
func SchedFromString(s string) (SchedPolicy, bool) {
	switch s {
	case "", "stealing":
		return SchedStealing, true
	case "static":
		return SchedStatic, true
	case "dynamic":
		return SchedDynamic, true
	}
	return SchedStealing, false
}

// stealDeque is one worker's range of unclaimed iterations. The owner
// takes grain-sized pieces from the front; thieves take the upper half
// of the stealable remainder from the back. A mutex (not a lock-free
// deque) is deliberate: operations move whole ranges, so the lock is
// taken once per O(grain) iterations and is almost always uncontended
// — the scalability win comes from there being one deque per worker,
// not from the deque's internals.
type stealDeque struct {
	mu sync.Mutex
	// [lo, hi) is the unclaimed range; iterations below pin may only
	// be taken by the owner.
	lo, hi, pin int64
	_           [4]int64 // keep neighbouring deques off one cache line
}

// take claims up to grain iterations from the front of the deque for
// its owner.
func (d *stealDeque) take(grain int64) (lo, hi int64, ok bool) {
	d.mu.Lock()
	if d.lo >= d.hi {
		d.mu.Unlock()
		return 0, 0, false
	}
	lo = d.lo
	hi = min(lo+grain, d.hi)
	d.lo = hi
	d.mu.Unlock()
	return lo, hi, true
}

// steal claims the upper half of the deque's stealable remainder,
// provided it starts above the thief's floor (the last iteration the
// thief executed). The floor keeps each thread's executed iterations
// strictly increasing — the monotonicity every dispatch policy
// guarantees and the guard monitor's replay depends on.
func (d *stealDeque) steal(floor int64) (lo, hi int64, ok bool) {
	d.mu.Lock()
	avail := d.hi - max(d.lo, d.pin)
	if avail <= 0 {
		d.mu.Unlock()
		return 0, 0, false
	}
	k := (avail + 1) / 2
	lo, hi = d.hi-k, d.hi
	if lo <= floor {
		d.mu.Unlock()
		return 0, 0, false
	}
	d.hi = lo
	d.mu.Unlock()
	return lo, hi, true
}

// peek reports the start of the range steal would claim, without
// claiming it.
func (d *stealDeque) peek(floor int64) (lo int64, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	avail := d.hi - max(d.lo, d.pin)
	if avail <= 0 {
		return 0, false
	}
	lo = d.hi - (avail+1)/2
	return lo, lo > floor
}

// put installs a stolen range as the deque's new content (the deque is
// empty when the owner resorts to stealing). Stolen ranges carry no
// pin: they may be re-stolen in their entirety.
func (d *stealDeque) put(lo, hi int64) {
	d.mu.Lock()
	d.lo, d.hi, d.pin = lo, hi, lo
	d.mu.Unlock()
}

// stealState is the shared state of one work-stealing DOALL region.
type stealState struct {
	deques []stealDeque
	// remaining counts unexecuted iterations; workers retire after it
	// reaches zero (claimed-but-unexecuted work cannot be stolen, so an
	// idle worker with no steal target left just waits for the field).
	remaining atomic.Int64
	// steals counts successful steals, for the region's obs summary.
	steals atomic.Int64
}

// stealGrainDiv sets the stealing granularity: a worker claims its own
// iterations in pieces of roughly share/stealGrainDiv, bounding both
// dispatch overhead (O(stealGrainDiv) deque operations per worker) and
// the work a thief cannot take from a nearly-done victim.
const stealGrainDiv = 8

// newStealState builds the initial deques: the same contiguous
// partition static scheduling uses, with each worker's first grain
// iterations pinned. The pin guarantees every worker executes at least
// one iteration of its own share even when the host serializes the
// goroutines (one worker would otherwise race ahead and steal
// everything), which keeps cross-thread effects — the guard monitor's
// whole subject — reproducible across hosts.
func newStealState(n int64, nt int) *stealState {
	st := &stealState{deques: make([]stealDeque, nt)}
	st.remaining.Store(n)
	chunk := n / int64(nt)
	rem := n % int64(nt)
	grain := max(1, chunk/stealGrainDiv)
	for t := int64(0); t < int64(nt); t++ {
		lo := t*chunk + min(t, rem)
		hi := lo + chunk
		if t < rem {
			hi++
		}
		d := &st.deques[t]
		d.lo, d.hi = lo, hi
		d.pin = min(lo+grain, hi)
	}
	return st
}

// runStealing executes a DOALL loop under the work-stealing scheduler.
// Tick parity: dispatch is charged as one CatSync op per worker, the
// same accounting as static chunking, so counters are bit-identical
// across scheduling policies.
func (w *thread) runStealing(f *frame, x *ast.For, lb loopBounds, pvAddr int64, st *stealState, body bodyFn) {
	var iterStart, iterEnd func(loopID int, iter int64, tid int)
	if h := w.m.opts.Hooks; h != nil {
		iterStart, iterEnd = h.IterStart, h.IterEnd
	}
	w.counters[CatSync]++ // one dispatch per worker, as with static chunks
	nt := len(st.deques)
	own := &st.deques[w.tid]
	grain := max(1, (lb.n/int64(nt))/stealGrainDiv)
	last := int64(-1) // last executed iteration: the steal floor
	o := w.m.opts.Obs
	for {
		lo, hi, ok := own.take(grain)
		for !ok {
			// Own deque empty: try to steal. Pick the victim whose
			// stolen range would start lowest among those above the
			// floor — taking the lowest eligible range first preserves
			// this thread's eligibility for the others. If no deque has
			// eligible work the remaining iterations are claimed and
			// running elsewhere (or below the floor), so wait for the
			// region to drain (or for a cancellation).
			if w.cancel != nil && w.cancel.Load() {
				return
			}
			if w.m.stop.Load() {
				return // machine-level cancellation: see parallelAttempt
			}
			best, bestLo := -1, int64(0)
			for v := 0; v < nt; v++ {
				if v == w.tid {
					continue
				}
				if plo, pok := st.deques[v].peek(last); pok && (best < 0 || plo < bestLo) {
					best, bestLo = v, plo
				}
			}
			if best >= 0 {
				// A raced-away range just means another sweep.
				if slo, shi, sok := st.deques[best].steal(last); sok {
					st.steals.Add(1)
					if o != nil {
						o.Counter("sched.steals").Inc()
						o.Emit(obs.Event{Name: "steal", Ph: 'i', Tid: w.tid,
							Loop: x.ID, Iter: slo, Label: "doall", V1: int64(best), V2: shi - slo})
					}
					own.put(slo, shi)
				}
			}
			if lo, hi, ok = own.take(grain); !ok {
				if best < 0 {
					if st.remaining.Load() <= 0 {
						return
					}
					runtime.Gosched()
				}
			}
		}
		for k := lo; k < hi; k++ {
			if w.cancel != nil && w.cancel.Load() {
				return // a sibling worker faulted; stop at the safe point
			}
			w.curIter = k
			last = k
			w.storeTyped(pvAddr, x.IndVar.Type, value{I: lb.start + k*lb.step})
			if iterStart != nil {
				iterStart(x.ID, k, w.tid)
			}
			c := body(w, f)
			if iterEnd != nil {
				iterEnd(x.ID, k, w.tid)
			}
			st.remaining.Add(-1)
			if c == ctrlBreak {
				rterrf(x.Pos(), "break out of a parallel loop")
			}
			if c == ctrlReturn {
				rterrf(x.Pos(), "return out of a parallel loop")
			}
		}
	}
}

// runDOALLDynamic executes a DOALL loop by self-scheduling
// DispatchChunk-sized grabs from a shared counter (SchedDynamic).
// Dispatch is charged as one CatSync op per worker — DOALL accounting
// is policy-independent.
func (w *thread) runDOALLDynamic(f *frame, x *ast.For, lb loopBounds, pvAddr int64, next *atomic.Int64, chunk int64, body bodyFn) {
	var iterStart, iterEnd func(loopID int, iter int64, tid int)
	if h := w.m.opts.Hooks; h != nil {
		iterStart, iterEnd = h.IterStart, h.IterEnd
	}
	w.counters[CatSync]++
	for {
		lo := next.Add(chunk) - chunk
		if lo >= lb.n {
			return
		}
		hi := min(lo+chunk, lb.n)
		for k := lo; k < hi; k++ {
			if w.cancel != nil && w.cancel.Load() {
				return
			}
			w.curIter = k
			w.storeTyped(pvAddr, x.IndVar.Type, value{I: lb.start + k*lb.step})
			if iterStart != nil {
				iterStart(x.ID, k, w.tid)
			}
			c := body(w, f)
			if iterEnd != nil {
				iterEnd(x.ID, k, w.tid)
			}
			if c == ctrlBreak {
				rterrf(x.Pos(), "break out of a parallel loop")
			}
			if c == ctrlReturn {
				rterrf(x.Pos(), "return out of a parallel loop")
			}
		}
	}
}

// runOrderedStatic executes a DOACROSS loop on contiguous static
// chunks (SchedStatic). Ordered sections still run in iteration order
// via the shared ticket, which pipelines the chunks back-to-front; it
// is slower than self-scheduling but preserves sequential semantics
// exactly. Dispatch is charged per iteration — DOACROSS accounting is
// policy-independent.
func (w *thread) runOrderedStatic(f *frame, x *ast.For, lb loopBounds, pvAddr int64, order *orderState, body bodyFn) {
	w.order = order
	defer func() { w.order = nil }()
	nt := int64(w.m.opts.NumThreads)
	chunk := lb.n / nt
	rem := lb.n % nt
	lo := int64(w.tid)*chunk + min(int64(w.tid), rem)
	hi := lo + chunk
	if int64(w.tid) < rem {
		hi++
	}
	var iterStart, iterEnd func(loopID int, iter int64, tid int)
	if h := w.m.opts.Hooks; h != nil {
		iterStart, iterEnd = h.IterStart, h.IterEnd
	}
	for k := lo; k < hi; k++ {
		if w.cancel != nil && w.cancel.Load() {
			return
		}
		w.counters[CatSync]++ // one dispatch per iteration
		w.curIter = k
		w.posted = false
		w.inOrdered = false
		w.storeTyped(pvAddr, x.IndVar.Type, value{I: lb.start + k*lb.step})
		if iterStart != nil {
			iterStart(x.ID, k, w.tid)
		}
		c := body(w, f)
		if iterEnd != nil {
			iterEnd(x.ID, k, w.tid)
		}
		if c == ctrlBreak || c == ctrlReturn {
			rterrf(x.Pos(), "break/return out of a parallel loop")
		}
		if order != nil && !w.posted {
			w.syncPost()
		}
	}
}
