package interp

import (
	"runtime"
	"sync/atomic"

	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/token"
)

// ctrl is the control-flow outcome of executing a statement.
type ctrl int

const (
	ctrlNext ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// orderState carries the cross-thread ordering of a DOACROSS loop's
// ordered section: ticket is the iteration currently allowed in.
type orderState struct {
	ticket atomic.Int64
}

func (t *thread) execBlock(f *frame, b *ast.Block) ctrl {
	mark := t.sp
	for _, s := range b.Stmts {
		if c := t.exec(f, s); c != ctrlNext {
			t.sp = mark
			return c
		}
	}
	t.sp = mark
	return ctrlNext
}

func (t *thread) exec(f *frame, s ast.Stmt) ctrl {
	t.counters[CatWork]++
	if max := t.m.opts.MaxOps; max > 0 && t.counters[CatWork] > max {
		rterrf(s.Pos(), "operation budget exceeded (%d ops)", max)
	}
	// Statement boundaries are cooperative-cancellation safe points
	// (Options.Ctx): the stop flag stays false for the whole run unless
	// a context watcher is armed, so this is one predictable branch.
	if t.m.stop.Load() {
		t.raiseCancelled()
	}
	switch x := s.(type) {
	case *ast.Block:
		return t.execBlock(f, x)

	case *ast.DeclStmt:
		for _, d := range x.Decls {
			t.execDecl(f, d)
		}
		return ctrlNext

	case *ast.ExprStmt:
		t.eval(f, x.X)
		return ctrlNext

	case *ast.If:
		if truth(t.eval(f, x.Cond), x.Cond.ExprType()) {
			return t.exec(f, x.Then)
		}
		if x.Else != nil {
			return t.exec(f, x.Else)
		}
		return ctrlNext

	case *ast.While:
		h := t.m.opts.Hooks
		if h != nil && t.isMain && h.LoopEnter != nil {
			h.LoopEnter(x.ID)
		}
		var iter int64
		for {
			// A cancelled region (sibling fault or watchdog timeout)
			// must be able to interrupt a worker stuck in a MiniC-level
			// loop, so every loop back-edge is a safe point.
			if t.cancel != nil && t.cancel.Load() {
				panic(regionCanceled{})
			}
			// The iteration hook fires before the condition so the
			// profiler attributes condition loads to the iteration
			// they guard (see package profile).
			if h != nil && t.isMain && h.LoopIter != nil {
				h.LoopIter(x.ID, iter)
			}
			iter++
			if !truth(t.eval(f, x.Cond), x.Cond.ExprType()) {
				break
			}
			c := t.exec(f, x.Body)
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn {
				return c
			}
		}
		if h != nil && t.isMain && h.LoopExit != nil {
			h.LoopExit(x.ID)
		}
		return ctrlNext

	case *ast.DoWhile:
		h := t.m.opts.Hooks
		if h != nil && t.isMain && h.LoopEnter != nil {
			h.LoopEnter(x.ID)
		}
		var iter int64
		for {
			if t.cancel != nil && t.cancel.Load() {
				panic(regionCanceled{}) // cancelled region: see While
			}
			if h != nil && t.isMain && h.LoopIter != nil {
				h.LoopIter(x.ID, iter)
			}
			iter++
			c := t.exec(f, x.Body)
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn {
				return c
			}
			if !truth(t.eval(f, x.Cond), x.Cond.ExprType()) {
				break
			}
		}
		if h != nil && t.isMain && h.LoopExit != nil {
			h.LoopExit(x.ID)
		}
		return ctrlNext

	case *ast.For:
		if x.Par != ast.Sequential && !t.parallel && t.ts == nil {
			if t.m.opts.TraceParallel {
				return t.execTracedFor(f, x)
			}
			if (t.m.opts.NumThreads > 1 || t.m.opts.ParallelizeSingle) && !t.m.opts.ForceSequential {
				var init bodyFn
				if x.Init != nil {
					init = func(t *thread, f *frame) ctrl { return t.exec(f, x.Init) }
				}
				return t.runParallelFor(f, x, init,
					func(t *thread, f *frame) ctrl { return t.exec(f, x.Body) },
					func(t *thread, f *frame) ctrl { return t.execSeqFor(f, x) })
			}
		}
		return t.execSeqFor(f, x)

	case *ast.Return:
		if x.X != nil {
			t.retVal = convert(t.eval(f, x.X), x.X.ExprType(), f.fn.Ret)
		} else {
			t.retVal = value{}
		}
		return ctrlReturn

	case *ast.Break:
		return ctrlBreak

	case *ast.Continue:
		return ctrlContinue

	case *ast.SyncWait:
		t.syncWait(x.Pos())
		return ctrlNext

	case *ast.SyncPost:
		t.syncPost()
		return ctrlNext
	}
	rterrf(s.Pos(), "cannot execute statement")
	return ctrlNext
}

func (t *thread) execDecl(f *frame, d *ast.VarDecl) {
	size := int64(0)
	ty := d.Type
	if d.VLALen != nil {
		n := t.eval(f, d.VLALen).I
		if n < 0 {
			rterrf(d.Pos(), "negative array length %d for %s", n, d.Name)
		}
		elem := ty.Elem.Size()
		size = n * elem
		if size == 0 {
			size = 1
		}
	} else {
		size = ty.Size()
	}
	a := t.alloca(size, d.Pos())
	f.slots[d.Sym.Index] = a
	// The declaration defines a fresh zeroed object; report it to the
	// profiler so reused stack addresses carry no stale history.
	if h := t.m.opts.Hooks; h != nil {
		if h.Store != nil && t.isMain {
			h.Store(d.Acc.Store, a, size)
		}
		if h.Observe != nil && t.observeOK(h, a, size) {
			h.Observe(Access{Site: d.Acc.Store, Addr: a, Size: size, Tid: t.tid,
				Iter: t.curIter, Store: true, Def: true, Ordered: t.inOrdered})
		}
	}
	if d.Init != nil {
		if ty.Kind == ctypes.Struct {
			src := t.eval(f, d.Init).I
			t.m.mem.Memcpy(a, src, ty.Size())
		} else {
			v := convert(t.eval(f, d.Init), d.Init.ExprType(), ty)
			t.storeTyped(a, ty, v)
		}
	}
}

// execSeqFor runs a for loop sequentially (also used for parallel
// loops under one thread or ForceSequential).
func (t *thread) execSeqFor(f *frame, x *ast.For) ctrl {
	mark := t.sp
	defer func() { t.sp = mark }()
	if x.Init != nil {
		if c := t.exec(f, x.Init); c != ctrlNext {
			return c
		}
	}
	h := t.m.opts.Hooks
	if h != nil && t.isMain && h.LoopEnter != nil {
		h.LoopEnter(x.ID)
	}
	var iter int64
	for {
		if t.cancel != nil && t.cancel.Load() {
			panic(regionCanceled{}) // cancelled region: see While in exec
		}
		// Fire the iteration hook before the condition so the profiler
		// attributes condition and post-expression accesses to the
		// iteration they belong to (see package profile).
		if h != nil && t.isMain && h.LoopIter != nil {
			h.LoopIter(x.ID, iter)
		}
		if x.Cond != nil && !truth(t.eval(f, x.Cond), x.Cond.ExprType()) {
			break
		}
		// A sequentially executed DOACROSS body still runs its
		// SyncWait/SyncPost statements; they are no-ops without an
		// order (syncWait checks t.order first). Crucially, no
		// bookkeeping may happen here: this path also executes nested
		// parallel loops inside a worker's iteration, and touching
		// t.curIter would corrupt the worker's ordered-section ticket.
		iter++
		c := t.exec(f, x.Body)
		if c == ctrlBreak {
			break
		}
		if c == ctrlReturn {
			return c
		}
		if x.Post != nil {
			t.eval(f, x.Post)
		}
	}
	if h != nil && t.isMain && h.LoopExit != nil {
		h.LoopExit(x.ID)
	}
	return ctrlNext
}

// execTracedFor executes a parallel loop sequentially while recording
// the per-iteration cost trace the schedule simulator replays.
func (t *thread) execTracedFor(f *frame, x *ast.For) ctrl {
	tr := &LoopTrace{LoopID: x.ID, Kind: x.Par}
	t.ts = &traceState{trace: tr}
	if h := t.m.opts.Hooks; h != nil && h.ParallelStart != nil {
		h.ParallelStart(x.ID, t.m.opts.NumThreads)
	}
	defer func() {
		t.ts = nil
		t.m.traces = append(t.m.traces, tr)
		if h := t.m.opts.Hooks; h != nil && h.ParallelEnd != nil {
			h.ParallelEnd(x.ID)
		}
	}()

	mark := t.sp
	defer func() { t.sp = mark }()
	if x.Init != nil {
		if c := t.exec(f, x.Init); c != ctrlNext {
			return c
		}
	}
	var iter int64
	for {
		if x.Cond != nil && !truth(t.eval(f, x.Cond), x.Cond.ExprType()) {
			break
		}
		t.curIter = iter
		t.posted = false
		iter++
		t.ts.beginIter(t)
		c := t.exec(f, x.Body)
		t.ts.endIter(t)
		if c == ctrlBreak {
			break
		}
		if c == ctrlReturn {
			return c
		}
		if x.Post != nil {
			t.eval(f, x.Post)
		}
	}
	return ctrlNext
}

// syncWait blocks until all earlier iterations have posted. Outside a
// parallel DOACROSS execution it is a no-op.
func (t *thread) syncWait(pos token.Pos) {
	if t.ts != nil {
		t.ts.waitMark = t.counters[CatWork]
		return
	}
	if t.order == nil {
		t.inOrdered = true
		return
	}
	t.counters[CatSync]++
	// Spinning executes no statements, so the MaxOps budget in exec
	// cannot interrupt it: a program whose ordered sections never post
	// (reachable under fuzzing) would hang forever. Bound the spin
	// count by the same budget. Aborting an unlucky legitimate wait
	// early is acceptable — the budget exists only for harnesses that
	// already accept budget aborts.
	spinMax := int64(0)
	if t.m.opts.MaxOps > 0 {
		spinMax = t.m.opts.MaxOps * 4
	}
	spins := int64(0)
	for t.order.ticket.Load() != t.curIter {
		// A sibling worker may have faulted before posting its ticket;
		// spinning on it would deadlock. The cancellation panic is
		// swallowed by the worker's recover in runParallelFor. A
		// machine-level context cancellation interrupts the spin the
		// same way.
		if t.cancel != nil && t.cancel.Load() {
			panic(regionCanceled{})
		}
		if t.m.stop.Load() {
			t.raiseCancelled()
		}
		spins++
		if spinMax > 0 && spins > spinMax {
			rterrf(pos, "operation budget exceeded waiting for ordered section (iteration %d)", t.curIter)
		}
		if spins&63 == 0 {
			runtime.Gosched()
		}
	}
	t.counters[CatWait] += spins
	t.inOrdered = true
}

// syncPost releases the next iteration's ordered section.
func (t *thread) syncPost() {
	if t.ts != nil {
		t.ts.postMark = t.counters[CatWork]
		t.posted = true
		return
	}
	if t.order == nil {
		t.posted = true
		t.inOrdered = false
		return
	}
	t.counters[CatSync]++
	t.order.ticket.Store(t.curIter + 1)
	t.posted = true
	t.inOrdered = false
}
