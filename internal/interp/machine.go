// Package interp executes MiniC programs against the simulated memory.
// It is the testbed substrate of the reproduction: sequential runs
// drive the dependence profiler, and parallel loops run with one
// goroutine per simulated thread over the shared address space, so the
// effect of the expansion transformation on wall-clock time, memory use
// and instruction counts is directly measurable.
package interp

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gdsx/internal/ast"
	"gdsx/internal/mem"
	"gdsx/internal/obs"
	"gdsx/internal/sema"
	"gdsx/internal/token"
)

// Counter categories for the instruction breakdown (paper Figure 12).
const (
	CatWork = iota // ordinary program operations
	CatSync        // scheduler operations: iteration dispatch, post
	CatWait        // spin iterations in ordered-section waits (cpu_relax)
	NumCats
)

// CatNames names the counter categories.
var CatNames = [NumCats]string{"work", "sync", "wait"}

// Hooks intercept the interpreter for profiling and for the
// runtime-privatization baseline. All fields are optional.
type Hooks struct {
	// Load and Store observe every memory access executed on the main
	// thread (sequential execution), keyed by access-site ID.
	Load  func(site int, addr int64, size int64)
	Store func(site int, addr int64, size int64)
	// LoopEnter/LoopIter/LoopExit observe loop execution on the main
	// thread. LoopIter is called before each iteration with a 0-based
	// iteration number.
	LoopEnter func(loopID int)
	LoopIter  func(loopID int, iter int64)
	LoopExit  func(loopID int)
	// Redirect, when set, may return a replacement address for a memory
	// access executed by any thread (the runtime-privatization access
	// monitor), plus the simulated op cost of the monitoring work it
	// performed. It runs on the accessing thread.
	Redirect func(site int, addr int64, size int64, tid int) (int64, int64)
	// Free observes heap frees (including the implicit free of realloc),
	// so privatization runtimes can invalidate per-thread copies.
	Free func(base int64)
	// ParallelStart/ParallelEnd bracket a parallel loop execution.
	ParallelStart func(loopID, nthreads int)
	ParallelEnd   func(loopID int)
	// IterStart/IterEnd bracket one parallel-loop iteration on the
	// worker thread executing it (the observability layer's span feed).
	// Unlike LoopIter they fire on every simulated thread, and only
	// inside the parallel-loop machinery — sequential loops do not emit
	// them.
	IterStart func(loopID int, iter int64, tid int)
	IterEnd   func(loopID int, iter int64, tid int)
	// ParallelCancel replaces ParallelEnd for a region abandoned
	// mid-flight (watchdog timeout): per-thread observations are
	// partial, so observers should discard them instead of running
	// their safe-point analysis.
	ParallelCancel func(loopID int)
	// Observe, when set, watches every sited memory access on every
	// thread (with the address Redirect produced, if any): the feed of
	// the guarded-execution monitor. It also sees definition events
	// (declarations, allocations, argument binding) with Def set.
	Observe func(ev Access)
	// RegionOnly declares that this set's per-access hooks (Redirect/
	// Load/Store/Observe) only need events from threads executing
	// inside a parallel region. The engines then keep sequential-
	// context accesses on the fast path (and re-enable scalar register
	// promotion, which never applies inside parallel subtrees anyway).
	// The guard monitor sets it: the monitor is inert between regions.
	RegionOnly bool
	// PrivateStacks declares that Observe does not need accesses a
	// parallel worker makes to its own stack region. Worker stacks are
	// disjoint and live for the whole region, so such accesses can
	// never conflict across threads nor land in an expanded structure
	// a sequential execution would have shared — they are thread-
	// private by construction (the paper's Definition 5 classifies
	// loop-body locals out of consideration before expansion even
	// runs). Skipping them removes the bulk of the guard's logging
	// volume. Monitors that want stack-escape conflicts checked too
	// (one worker publishing a pointer to its own frame and another
	// dereferencing it) leave this unset and log everything.
	PrivateStacks bool
	// Expand observes the __expand_malloc/__expand_note markers the
	// guarded expansion pass emits: base is the address of copy 0, span
	// the per-copy size in bytes, esz the element size for interleaved
	// layout (0 = bonded layout).
	Expand func(base, span, esz int64)
	// Commute observes the __comm_note markers the expansion pass emits
	// for commutative-update objects: the span-byte object at base holds
	// esz-byte integer elements whose cross-iteration updates commute
	// under op (see ddg.CommOp). A privatization runtime arms per-thread
	// copies for the next parallel region and merges them at region
	// exit.
	Commute func(base, span, esz, op int64)
	// Guarded marks a chain that contains the guarded-execution access
	// monitor. The scheduler consults it: dynamic self-scheduling has no
	// placement guarantee, which makes must-detect verdicts
	// placement-dependent, so guarded regions run such loops under work
	// stealing instead (with a structured warning in Result.Warnings).
	Guarded bool
}

// Access describes one observed memory access for Hooks.Observe.
type Access struct {
	Site int
	Addr int64
	Size int64
	Tid  int
	// Iter is the 0-based iteration the accessing thread is executing;
	// only meaningful while a parallel loop runs.
	Iter  int64
	Store bool
	// Def marks the definition of a fresh object (declaration,
	// allocation, argument binding): prior contents of the addresses are
	// dead.
	Def bool
	// Ordered marks accesses executed inside an ordered section
	// (between SyncWait and SyncPost).
	Ordered bool
}

// Options configure a Machine.
type Options struct {
	// NumThreads is the simulated thread count N. 1 means sequential.
	NumThreads int
	// MemSize is the simulated memory capacity in bytes (default 64 MiB).
	MemSize int64
	// StackSize is the per-thread stack size in bytes (default 1 MiB).
	StackSize int64
	// Hooks intercept execution (may be nil).
	Hooks *Hooks
	// ForceSequential runs parallel-annotated loops sequentially (used
	// to measure transformed-code overhead on one core, Figure 9).
	ForceSequential bool
	// TraceParallel executes parallel loops sequentially while
	// recording per-iteration cost traces for the schedule simulator
	// (package schedule). Implies sequential execution.
	TraceParallel bool
	// ParallelizeSingle runs the parallel-loop machinery (worker
	// spawning, region hooks) even with one thread, so runtime
	// monitors engage for single-thread overhead measurements.
	ParallelizeSingle bool
	// MaxOps aborts the run once the main thread has executed this
	// many operations (0 = unlimited): a runaway guard for untrusted
	// programs.
	MaxOps int64
	// MemLimit caps live simulated allocations in bytes (0 = capacity
	// only); allocations beyond it fail like out-of-memory.
	MemLimit int64
	// FailAlloc makes the Nth allocation of the run fail (1 = the
	// first), a fault-injection hook for OOM-robustness tests.
	FailAlloc int64
	// Sched selects the parallel-loop scheduler. The zero value is
	// SchedStealing (work-stealing deques for DOALL, chunked
	// self-scheduling for DOACROSS); SchedStatic and SchedDynamic keep
	// the fixed pre-stealing dispatches. All policies produce identical
	// output, counters and guard semantics — only the iteration-to-
	// thread assignment (and hence wall-clock balance) differs.
	Sched SchedPolicy
	// DispatchChunk is the iteration count per shared-counter grab for
	// self-scheduled loops (DOACROSS under SchedStealing/SchedDynamic,
	// DOALL under SchedDynamic). 0 means 1, the paper's chunk size.
	// Larger chunks amortize dispatch but narrow the ordered-section
	// pipeline (see the chunk-sweep ablation).
	DispatchChunk int
	// Engine selects the execution engine. The zero value is the
	// closure-compiling engine; EngineTree is the tree-walking
	// reference implementation (see engine.go).
	Engine Engine
	// Opt selects how much of the compiled engine's optimization
	// pipeline applies (see opt.go). The zero value is the full
	// pipeline; OptNone reproduces the unoptimized closures.
	// Setting Engine to EngineCompiledNoOpt forces OptNone.
	Opt OptLevel
	// OptProfile, when set, drives profile-guided site specialization:
	// the hottest sites it names get flattened load/store accessors.
	// Nil disables the pass; the other passes do not need a profile.
	OptProfile *SiteProfile
	// Recover enables region-scoped checkpoint/rollback recovery: each
	// parallel region snapshots mutable state on entry, and a guard
	// abort, worker fault or watchdog timeout rolls the region back and
	// re-executes it sequentially instead of failing the run.
	Recover *RecoverySpec
	// RegionTimeout bounds each parallel region's wall-clock time
	// (0 = unbounded). An expired watchdog cancels the workers; with
	// Recover set the region is rolled back and re-executed
	// sequentially, without it the run fails with a runtime error.
	RegionTimeout time.Duration
	// Obs attaches the runtime observability layer: its tracer and
	// metrics registry receive region/iteration/guard/recovery/allocator
	// events through the hook layer plus direct feeds from the allocator
	// and the recovery controller. Nil disables observability at zero
	// cost (every producer is behind a nil check).
	Obs *obs.Observer
	// FaultPlan injects deterministic failures into the speculation
	// ladder (spurious suspicions, forced rollbacks) for chaos testing.
	// Nil disables injection.
	FaultPlan *FaultPlan
	// Ctx, when non-nil, cancels the run cooperatively: its Done channel
	// is watched for the duration of Run, and every statement boundary
	// in both engines — plus the spin and idle loops of the parallel
	// schedulers — is a cancellation safe point. A cancelled run winds
	// down all workers (no goroutine leaks, no partial guard analysis:
	// the region's hooks see ParallelCancel) and returns *CancelledError
	// wrapping context.Cause. It composes with RegionTimeout: the
	// watchdog bounds one region, the context bounds the whole run.
	Ctx context.Context
	// Memory, when non-nil, is the simulated memory to execute against
	// instead of allocating a fresh one — it must be freshly created or
	// Reset, with capacity Options.MemSize. Long-lived callers (the
	// gdsxd service) pool memories between runs: resetting a used arena
	// is proportional to its high-water mark, not its capacity.
	Memory *mem.Memory
}

func (o *Options) fill() {
	if o.Engine == EngineCompiledNoOpt {
		o.Engine = EngineCompiled
		o.Opt = OptNone
	}
	if o.NumThreads <= 0 {
		o.NumThreads = 1
	}
	if o.MemSize <= 0 {
		o.MemSize = 64 << 20
	}
	if o.StackSize <= 0 {
		o.StackSize = 1 << 20
	}
}

// Result is the outcome of running a program.
type Result struct {
	Exit     int64
	Output   string
	Counters [NumCats]int64
	MemStats mem.Stats
	// MemOps is the number of memory accesses executed.
	MemOps int64
	// Traces holds one entry per parallel-loop instance when the
	// machine ran with TraceParallel.
	Traces []*LoopTrace
	// Regions holds per-region recovery health records (sorted by loop
	// ID) when the machine ran with Options.Recover.
	Regions []RegionStats
	// Warnings lists structured runtime adjustments the machine made
	// (e.g. a guarded region's dynamic schedule overridden to work
	// stealing), deduplicated, in first-occurrence order.
	Warnings []string
}

// Machine executes one MiniC program.
type Machine struct {
	prog *ast.Program
	info *sema.Info
	opts Options
	mem  *mem.Memory

	globalAddr []int64
	strMu      sync.Mutex
	strings    map[string]int64

	outMu sync.Mutex
	out   bytes.Buffer

	counters [NumCats]int64
	memOps   int64
	ctrMu    sync.Mutex

	traces []*LoopTrace

	warnMu   sync.Mutex
	warnings []string

	// faults tracks the consumption counters of Options.FaultPlan; nil
	// without a plan.
	faults *faultState

	inParallel bool

	// recovery is the region-recovery controller, nil unless the
	// machine runs with Options.Recover.
	recovery *recoveryState

	// stop is the cooperative-cancellation flag: set (once) by the
	// context watcher while Options.Ctx is cancellable. Both engines
	// poll it at statement boundaries, and the scheduler spin loops poll
	// it alongside the region-cancel flag. cancelCause is written before
	// the release-store of stop, so any thread that observes stop also
	// observes the cause.
	stop        atomic.Bool
	cancelCause error

	// accessHooks is opts.Hooks when the chain carries a per-access
	// hook (Redirect/Load/Store/Observe), else nil. The access paths of
	// both engines branch on this instead of opts.Hooks so that hook
	// layers with only region-level interest (the observer's standard
	// tier) leave every load and store on the fast path.
	accessHooks *Hooks

	// code holds the closure-compiled function bodies when the machine
	// runs with EngineCompiled; nil under EngineTree.
	code *compiledProg
}

// New creates a machine for the checked program.
func New(prog *ast.Program, info *sema.Info, opts Options) *Machine {
	opts.fill()
	backing := opts.Memory
	if backing == nil {
		backing = mem.New(opts.MemSize)
	}
	m := &Machine{
		prog:    prog,
		info:    info,
		opts:    opts,
		mem:     backing,
		strings: map[string]int64{},
	}
	if opts.Obs != nil {
		// The observer's hooks run ahead of any caller-supplied chain
		// (monitor + user): the guard monitor's ParallelEnd panics on a
		// violation, and chaining obs first means the region-end event
		// is recorded before that panic cuts the chain.
		m.opts.Hooks = ChainHooks(obsHooks(opts.Obs, opts.NumThreads), opts.Hooks)
		m.mem.SetObs(opts.Obs)
	}
	if opts.MemLimit > 0 {
		m.mem.SetLimit(opts.MemLimit)
	}
	if opts.FailAlloc > 0 {
		m.mem.SetFailAlloc(opts.FailAlloc)
	}
	if opts.Recover != nil {
		m.recovery = newRecoveryState(*opts.Recover, opts.Obs)
	}
	if opts.FaultPlan != nil {
		m.faults = &faultState{plan: *opts.FaultPlan}
	}
	if m.opts.Hooks.HasAccessHooks() {
		m.accessHooks = m.opts.Hooks
	}
	if opts.Engine == EngineCompiled {
		m.code = compileProgram(m)
	}
	return m
}

// Engine reports which execution engine the machine uses.
func (m *Machine) Engine() Engine {
	if m.code != nil {
		return EngineCompiled
	}
	return EngineTree
}

// Mem exposes the simulated memory (used by hooks and tests).
func (m *Machine) Mem() *mem.Memory { return m.mem }

// Info returns the semantic tables for the program being run.
func (m *Machine) Info() *sema.Info { return m.info }

// NumThreads returns the configured simulated thread count.
func (m *Machine) NumThreads() int { return m.opts.NumThreads }

// RuntimeError is the structured error a faulting MiniC program
// produces (null dereference, out-of-bounds access, division by zero,
// out of memory, ...). It aborts execution via panic; Run recovers it
// into the returned error.
type RuntimeError struct {
	Pos token.Pos
	Msg string
}

func (e RuntimeError) Error() string { return fmt.Sprintf("%s: runtime error: %s", e.Pos, e.Msg) }

func rterrf(pos token.Pos, format string, args ...any) {
	panic(RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Abort carries a structured error out of a hook (the guarded-execution
// monitor raises it from ParallelEnd): Run recovers it and returns Err.
type Abort struct{ Err error }

// CancelledError is the structured error a cooperatively-cancelled run
// returns (Options.Ctx done). The message is deterministic for a given
// cancellation cause — it never names the statement, iteration or
// thread the cancellation happened to land on.
type CancelledError struct {
	// Cause is context.Cause at cancellation time (context.Canceled,
	// context.DeadlineExceeded, or a caller-supplied cause).
	Cause error
}

func (e *CancelledError) Error() string {
	if e.Cause != nil {
		return "interp: run cancelled: " + e.Cause.Error()
	}
	return "interp: run cancelled"
}

func (e *CancelledError) Unwrap() error { return e.Cause }

// runCancelled is panicked at a safe point on the spawning thread when
// the machine's context is done; Run recovers it into *CancelledError.
// Workers inside a parallel region panic regionCanceled instead (their
// recover swallows it) so cancellation never masquerades as a worker
// fault with a nondeterministic iteration number.
type runCancelled struct{}

// raiseCancelled aborts execution at a cancellation safe point.
func (t *thread) raiseCancelled() {
	if t.parallel {
		panic(regionCanceled{})
	}
	panic(runCancelled{})
}

// cancelled reports whether the machine's context was cancelled.
func (m *Machine) cancelled() bool { return m.stop.Load() }

// Run executes the program's main function and returns its result.
func (m *Machine) Run() (res Result, err error) {
	if ctx := m.opts.Ctx; ctx != nil && ctx.Done() != nil {
		if cerr := ctx.Err(); cerr != nil {
			return Result{}, &CancelledError{Cause: context.Cause(ctx)}
		}
		// The watcher flips the stop flag when the context fires; the
		// done channel reclaims it when Run returns first, so a pooled
		// machine leaks no goroutine.
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-ctx.Done():
				m.cancelCause = context.Cause(ctx)
				m.stop.Store(true)
			case <-done:
			}
		}()
	}
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(RuntimeError); ok {
				err = re
				return
			}
			if ab, ok := r.(Abort); ok {
				err = ab.Err
				return
			}
			if _, ok := r.(runCancelled); ok {
				err = &CancelledError{Cause: m.cancelCause}
				return
			}
			// A contained region failure that no recovery caught (the
			// machine runs without Options.Recover): surface the
			// underlying error unchanged.
			if rf, ok := r.(regionFault); ok {
				err = rf.err
				return
			}
			panic(r)
		}
	}()
	if err := m.initGlobals(); err != nil {
		return Result{}, err
	}
	t, terr := m.newThread(0)
	if terr != nil {
		return Result{}, terr
	}
	mainFn := m.prog.Func("main")
	var ret value
	if m.code != nil {
		ret = t.callCompiled(m.code.funcs[mainFn], nil, mainFn.Pos())
	} else {
		ret = t.call(mainFn, nil, mainFn.Pos())
	}
	m.mergeCounters(t)
	res = Result{
		Exit:     ret.I,
		Output:   m.out.String(),
		Counters: m.counters,
		MemStats: m.mem.Stats(),
		MemOps:   m.memOps,
		Traces:   m.traces,
	}
	if m.recovery != nil {
		res.Regions = m.recovery.snapshot()
	}
	m.warnMu.Lock()
	res.Warnings = append([]string(nil), m.warnings...)
	m.warnMu.Unlock()
	m.publishObs(res)
	return res, nil
}

// warnf records a structured runtime warning, deduplicated by its
// formatted text, for Result.Warnings.
func (m *Machine) warnf(format string, args ...any) {
	w := fmt.Sprintf(format, args...)
	m.warnMu.Lock()
	defer m.warnMu.Unlock()
	for _, e := range m.warnings {
		if e == w {
			return
		}
	}
	m.warnings = append(m.warnings, w)
}

// publishObs records the run's final whole-run aggregates in the
// metrics registry: the instruction-category counters, the memory-op
// count, and the allocator's high-water marks (the incremental
// allocator feed tracks live bytes; the final gauges make the totals
// available even for programs that never free).
func (m *Machine) publishObs(res Result) {
	o := m.opts.Obs
	if o == nil || o.Metrics == nil {
		return
	}
	for i := 0; i < NumCats; i++ {
		o.Counter("interp.ops." + CatNames[i]).Add(res.Counters[i])
	}
	o.Counter("interp.mem_ops").Add(res.MemOps)
	o.Gauge("mem.live").Set(res.MemStats.Live)
	o.Gauge("mem.high_water").Set(res.MemStats.HighWater)
	o.Gauge("mem.high_water_data").Set(res.MemStats.HighWaterData)
	o.Gauge("mem.blocks").Set(int64(res.MemStats.Blocks))
}

// RegionStats returns the per-region recovery health records (sorted
// by loop ID); empty unless the machine runs with Options.Recover.
func (m *Machine) RegionStats() []RegionStats {
	if m.recovery == nil {
		return nil
	}
	return m.recovery.snapshot()
}

func (m *Machine) mergeCounters(t *thread) {
	m.ctrMu.Lock()
	for i := 0; i < NumCats; i++ {
		m.counters[i] += t.counters[i]
	}
	m.memOps += t.memOps
	m.ctrMu.Unlock()
}

func (m *Machine) initGlobals() error {
	m.globalAddr = make([]int64, len(m.info.Globals))
	for i, g := range m.info.Globals {
		size := g.Type.Size()
		addr, err := m.mem.Alloc(size, 0, "global "+g.Name)
		if err != nil {
			return err
		}
		m.globalAddr[i] = addr
	}
	// Initializers may reference other globals (constants only), so a
	// scratch thread evaluates them after all allocation.
	t, err := m.newThread(0)
	if err != nil {
		return err
	}
	defer t.release()
	for i, g := range m.info.Globals {
		if g.Init == nil {
			continue
		}
		v := t.eval(nil, g.Init)
		t.storeTyped(m.globalAddr[i], g.Type, convert(v, g.Init.ExprType(), g.Type))
	}
	return nil
}

// internString returns the address of a NUL-terminated copy of s.
func (m *Machine) internString(s string) int64 {
	m.strMu.Lock()
	defer m.strMu.Unlock()
	if a, ok := m.strings[s]; ok {
		return a
	}
	addr, err := m.mem.Alloc(int64(len(s))+1, 0, "str")
	if err != nil {
		rterrf(token.Pos{}, "interning string: %v", err)
	}
	copy(m.mem.Bytes(addr, int64(len(s))), s)
	m.strings[s] = addr
	return addr
}

func (m *Machine) printf(format string, args ...any) {
	m.outMu.Lock()
	fmt.Fprintf(&m.out, format, args...)
	m.outMu.Unlock()
}
