package interp

import (
	"math"

	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/token"
)

// value is a MiniC runtime value. Integers and pointers live in I;
// floating values live in F. The static type of the originating
// expression decides which field is meaningful.
type value struct {
	I int64
	F float64
}

func iv(i int64) value   { return value{I: i} }
func fv(f float64) value { return value{F: f} }

// truth reports C truthiness for a value of type t.
func truth(v value, t *ctypes.Type) bool {
	if t != nil && t.IsFloat() {
		return v.F != 0
	}
	return v.I != 0
}

// convert coerces v from type 'from' to type 'to'.
func convert(v value, from, to *ctypes.Type) value {
	if from == nil || to == nil {
		return v
	}
	if from.Kind == ctypes.Array {
		return v // decayed address
	}
	switch {
	case to.IsFloat() && from.IsFloat():
		if to.Kind == ctypes.Float {
			return fv(float64(float32(v.F)))
		}
		return v
	case to.IsFloat():
		if from.Unsigned {
			return fv(float64(uint64(v.I)))
		}
		return fv(float64(v.I))
	case from.IsFloat(): // to integer
		return truncInt(int64(v.F), to)
	case to.Kind == ctypes.Ptr:
		return v
	case to.IsInteger():
		return truncInt(v.I, to)
	}
	return v
}

// truncInt truncates i to the width of integer type t with proper
// sign- or zero-extension.
func truncInt(i int64, t *ctypes.Type) value {
	switch t.Size() {
	case 1:
		if t.Unsigned {
			return iv(int64(uint8(i)))
		}
		return iv(int64(int8(i)))
	case 2:
		if t.Unsigned {
			return iv(int64(uint16(i)))
		}
		return iv(int64(int16(i)))
	case 4:
		if t.Unsigned {
			return iv(int64(uint32(i)))
		}
		return iv(int64(int32(i)))
	default:
		return iv(i)
	}
}

// loadTyped reads a value of type ty from addr.
func (t *thread) loadTyped(addr int64, ty *ctypes.Type) value {
	switch ty.Kind {
	case ctypes.Float:
		return fv(float64(math.Float32frombits(uint32(t.m.mem.Load(addr, 4)))))
	case ctypes.Double:
		return fv(math.Float64frombits(t.m.mem.Load(addr, 8)))
	case ctypes.Ptr:
		return iv(int64(t.m.mem.Load(addr, 8)))
	default:
		raw := t.m.mem.Load(addr, int(ty.Size()))
		return truncInt(int64(raw), ty)
	}
}

// storeTyped writes v (already converted to ty) at addr.
func (t *thread) storeTyped(addr int64, ty *ctypes.Type, v value) {
	switch ty.Kind {
	case ctypes.Float:
		t.m.mem.Store(addr, 4, uint64(math.Float32bits(float32(v.F))))
	case ctypes.Double:
		t.m.mem.Store(addr, 8, math.Float64bits(v.F))
	case ctypes.Ptr:
		t.m.mem.Store(addr, 8, uint64(v.I))
	case ctypes.Struct:
		rterrf(token.Pos{}, "struct store without source address")
	default:
		t.m.mem.Store(addr, int(ty.Size()), uint64(v.I))
	}
}

// touchCache registers a memory access with the thread's cache model,
// counting misses as memory-system traffic.
func (t *thread) touchCache(addr int64) {
	t.memOps++
	line := addr>>6 + 1
	set := &t.cacheTags[(addr>>6)&255]
	switch line {
	case set[0]:
		return
	case set[1]:
		set[0], set[1] = line, set[0]
		return
	case set[2]:
		set[0], set[1], set[2] = line, set[0], set[1]
		return
	case set[3]:
		set[0], set[1], set[2], set[3] = line, set[0], set[1], set[2]
		return
	}
	t.memMiss++
	set[0], set[1], set[2], set[3] = line, set[0], set[1], set[2]
}

// loadAccess performs the load belonging to access site, applying the
// profiling and redirection hooks (accessHooks is nil when the chain
// carries none, keeping purely region-level layers off this path).
func (t *thread) loadAccess(pos token.Pos, site int, addr int64, ty *ctypes.Type) value {
	t.touchCache(addr)
	size := ty.Size()
	if h := t.m.accessHooks; h != nil {
		if h.Redirect != nil {
			var cost int64
			addr, cost = h.Redirect(site, addr, size, t.tid)
			t.counters[CatWork] += cost
		}
		t.checkAccess(pos, addr, size)
		if h.Load != nil && t.isMain {
			h.Load(site, addr, size)
		}
		if h.Observe != nil && t.observeOK(h, addr, size) {
			h.Observe(Access{Site: site, Addr: addr, Size: size, Tid: t.tid,
				Iter: t.curIter, Ordered: t.inOrdered})
		}
	} else {
		t.checkAccess(pos, addr, size)
	}
	return t.loadTyped(addr, ty)
}

// storeAccess performs the store belonging to access site.
func (t *thread) storeAccess(pos token.Pos, site int, addr int64, ty *ctypes.Type, v value) {
	t.touchCache(addr)
	size := ty.Size()
	if h := t.m.accessHooks; h != nil {
		if h.Redirect != nil {
			var cost int64
			addr, cost = h.Redirect(site, addr, size, t.tid)
			t.counters[CatWork] += cost
		}
		t.checkAccess(pos, addr, size)
		if h.Store != nil && t.isMain {
			h.Store(site, addr, size)
		}
		if h.Observe != nil && t.observeOK(h, addr, size) {
			h.Observe(Access{Site: site, Addr: addr, Size: size, Tid: t.tid,
				Iter: t.curIter, Store: true, Ordered: t.inOrdered})
		}
	} else {
		t.checkAccess(pos, addr, size)
	}
	t.storeTyped(addr, ty, v)
}

// symAddr returns the memory address of a variable symbol.
func (t *thread) symAddr(f *frame, sym *ast.Symbol, pos token.Pos) int64 {
	switch sym.Kind {
	case ast.SymGlobal:
		return t.m.globalAddr[sym.Index]
	case ast.SymLocal, ast.SymParam:
		a := f.slots[sym.Index]
		if a == 0 {
			rterrf(pos, "variable %s used before its declaration executed", sym.Name)
		}
		return a
	}
	rterrf(pos, "%s has no address", sym.Name)
	return 0
}

// addr computes the lvalue address of e.
func (t *thread) addr(f *frame, e ast.Expr) int64 {
	switch x := e.(type) {
	case *ast.Ident:
		switch x.Sym.Kind {
		case ast.SymTID, ast.SymNTH:
			rterrf(x.Pos(), "%s has no address", x.Name)
		}
		return t.symAddr(f, x.Sym, x.Pos())
	case *ast.Index:
		base := t.evalBase(f, x.X)
		idx := t.eval(f, x.I)
		elem := x.ExprType()
		return base + idx.I*sizeOfElem(elem, x.Pos())
	case *ast.Member:
		var base int64
		if x.Arrow {
			base = t.eval(f, x.X).I
			if base == 0 {
				rterrf(x.Pos(), "null pointer dereference (->%s)", x.Name)
			}
		} else if _, isCall := x.X.(*ast.Call); isCall {
			// Field of a struct-returning call: the call evaluates to
			// the address of a temporary copy.
			base = t.eval(f, x.X).I
		} else {
			base = t.addr(f, x.X)
		}
		return base + x.Field.Offset
	case *ast.Unary:
		if x.Op == token.MUL {
			p := t.eval(f, x.X)
			if p.I == 0 {
				rterrf(x.Pos(), "null pointer dereference")
			}
			return p.I
		}
	}
	rterrf(e.Pos(), "expression has no address")
	return 0
}

func sizeOfElem(t *ctypes.Type, pos token.Pos) int64 {
	if t == nil {
		rterrf(pos, "untyped element")
	}
	if t.Kind == ctypes.Void {
		return 1
	}
	if !t.HasStaticSize() {
		rterrf(pos, "element of dynamic type %s", t)
	}
	return t.Size()
}

// evalBase evaluates an expression used as an indexing/pointer base:
// arrays yield their address, pointers their value.
func (t *thread) evalBase(f *frame, e ast.Expr) int64 {
	ty := e.ExprType()
	if ty != nil && ty.Kind == ctypes.Array {
		return t.addr(f, e)
	}
	return t.eval(f, e).I
}

// eval computes the rvalue of e.
func (t *thread) eval(f *frame, e ast.Expr) value {
	t.counters[CatWork]++
	switch x := e.(type) {
	case *ast.IntLit:
		return iv(x.Value)
	case *ast.FloatLit:
		return fv(x.Value)
	case *ast.StringLit:
		return iv(t.m.internString(x.Value))

	case *ast.Ident:
		switch x.Sym.Kind {
		case ast.SymTID:
			return iv(int64(t.tid))
		case ast.SymNTH:
			return iv(int64(t.m.opts.NumThreads))
		case ast.SymFunc, ast.SymBuiltin:
			rterrf(x.Pos(), "function %s used as a value", x.Name)
		}
		// Arrays and structs evaluate to their address; struct values
		// are copied by the consumer (assignment, call, return).
		if k := x.Sym.Type.Kind; k == ctypes.Array || k == ctypes.Struct {
			return iv(t.symAddr(f, x.Sym, x.Pos()))
		}
		a := t.symAddr(f, x.Sym, x.Pos())
		return t.loadAccess(x.Pos(), x.Acc.Load, a, x.Sym.Type)

	case *ast.Unary:
		return t.evalUnary(f, x)

	case *ast.Binary:
		return t.evalBinary(f, x)

	case *ast.Logical:
		xv := t.eval(f, x.X)
		if x.Op == token.LAND {
			if !truth(xv, x.X.ExprType()) {
				return iv(0)
			}
		} else {
			if truth(xv, x.X.ExprType()) {
				return iv(1)
			}
		}
		if truth(t.eval(f, x.Y), x.Y.ExprType()) {
			return iv(1)
		}
		return iv(0)

	case *ast.Cond:
		if truth(t.eval(f, x.C), x.C.ExprType()) {
			return convert(t.eval(f, x.Then), x.Then.ExprType(), x.ExprType())
		}
		return convert(t.eval(f, x.Else), x.Else.ExprType(), x.ExprType())

	case *ast.Assign:
		return t.evalAssign(f, x)

	case *ast.IncDec:
		return t.evalIncDec(f, x)

	case *ast.Index:
		if k := x.ExprType().Kind; k == ctypes.Array || k == ctypes.Struct {
			return iv(t.addr(f, x)) // address only; consumer copies structs
		}
		a := t.addr(f, x)
		return t.loadAccess(x.Pos(), x.Acc.Load, a, x.ExprType())

	case *ast.Member:
		if k := x.ExprType().Kind; k == ctypes.Array || k == ctypes.Struct {
			return iv(t.addr(f, x))
		}
		a := t.addr(f, x)
		return t.loadAccess(x.Pos(), x.Acc.Load, a, x.ExprType())

	case *ast.Call:
		return t.evalCall(f, x)

	case *ast.Cast:
		return convert(t.eval(f, x.X), x.X.ExprType(), x.To)

	case *ast.SizeofType:
		return iv(x.Of.Size())

	case *ast.SizeofExpr:
		return iv(x.X.ExprType().Size())
	}
	rterrf(e.Pos(), "cannot evaluate expression")
	return value{}
}

func (t *thread) evalUnary(f *frame, x *ast.Unary) value {
	switch x.Op {
	case token.AND:
		return iv(t.addr(f, x.X))
	case token.MUL:
		if k := x.ExprType().Kind; k == ctypes.Array || k == ctypes.Struct {
			return iv(t.addr(f, x))
		}
		a := t.addr(f, x)
		return t.loadAccess(x.Pos(), x.Acc.Load, a, x.ExprType())
	case token.SUB:
		v := t.eval(f, x.X)
		if x.ExprType().IsFloat() {
			return fv(-toFloat(v, x.X.ExprType()))
		}
		return truncInt(-v.I, x.ExprType())
	case token.ADD:
		return convert(t.eval(f, x.X), x.X.ExprType(), x.ExprType())
	case token.NOT:
		return truncInt(^t.eval(f, x.X).I, x.ExprType())
	case token.LNOT:
		if truth(t.eval(f, x.X), x.X.ExprType()) {
			return iv(0)
		}
		return iv(1)
	}
	rterrf(x.Pos(), "bad unary operator %s", x.Op)
	return value{}
}

func toFloat(v value, t *ctypes.Type) float64 {
	if t.IsFloat() {
		return v.F
	}
	if t.Unsigned {
		return float64(uint64(v.I))
	}
	return float64(v.I)
}

func (t *thread) evalBinary(f *frame, x *ast.Binary) value {
	xt, yt := x.X.ExprType(), x.Y.ExprType()
	xIsPtr := xt.Kind == ctypes.Ptr || xt.Kind == ctypes.Array
	yIsPtr := yt.Kind == ctypes.Ptr || yt.Kind == ctypes.Array

	// Pointer arithmetic and pointer comparison.
	if xIsPtr || yIsPtr {
		var xv, yv int64
		if xIsPtr {
			xv = t.evalBase(f, x.X)
		} else {
			xv = t.eval(f, x.X).I
		}
		if yIsPtr {
			yv = t.evalBase(f, x.Y)
		} else {
			yv = t.eval(f, x.Y).I
		}
		switch x.Op {
		case token.ADD:
			if xIsPtr {
				return iv(xv + yv*ptrElemSize(xt, x.Pos()))
			}
			return iv(yv + xv*ptrElemSize(yt, x.Pos()))
		case token.SUB:
			if xIsPtr && yIsPtr {
				return iv((xv - yv) / ptrElemSize(xt, x.Pos()))
			}
			return iv(xv - yv*ptrElemSize(xt, x.Pos()))
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			return cmpInt(x.Op, xv, yv, false)
		}
		rterrf(x.Pos(), "bad pointer operation %s", x.Op)
	}

	common := ctypes.Common(xt, yt)
	xv := convert(t.eval(f, x.X), xt, common)
	yv := convert(t.eval(f, x.Y), yt, common)

	if common.IsFloat() {
		a, b := xv.F, yv.F
		switch x.Op {
		case token.ADD:
			return fv(a + b)
		case token.SUB:
			return fv(a - b)
		case token.MUL:
			return fv(a * b)
		case token.QUO:
			return fv(a / b)
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			return cmpFloat(x.Op, a, b)
		}
		rterrf(x.Pos(), "bad float operation %s", x.Op)
	}

	a, b := xv.I, yv.I
	rt := x.ExprType()
	switch x.Op {
	case token.ADD:
		return truncInt(a+b, rt)
	case token.SUB:
		return truncInt(a-b, rt)
	case token.MUL:
		return truncInt(a*b, rt)
	case token.QUO:
		if b == 0 {
			rterrf(x.Pos(), "integer division by zero")
		}
		if common.Unsigned {
			return truncInt(int64(uint64(a)/uint64(b)), rt)
		}
		return truncInt(a/b, rt)
	case token.REM:
		if b == 0 {
			rterrf(x.Pos(), "integer modulo by zero")
		}
		if common.Unsigned {
			return truncInt(int64(uint64(a)%uint64(b)), rt)
		}
		return truncInt(a%b, rt)
	case token.SHL:
		return truncInt(a<<uint(b&63), rt)
	case token.SHR:
		if xt.Unsigned {
			// Width-correct logical shift for the promoted operand.
			switch promSize(xt) {
			case 4:
				return truncInt(int64(uint32(a)>>uint(b&63)), rt)
			default:
				return truncInt(int64(uint64(a)>>uint(b&63)), rt)
			}
		}
		return truncInt(a>>uint(b&63), rt)
	case token.AND:
		return truncInt(a&b, rt)
	case token.OR:
		return truncInt(a|b, rt)
	case token.XOR:
		return truncInt(a^b, rt)
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		return cmpInt(x.Op, a, b, common.Unsigned)
	}
	rterrf(x.Pos(), "bad integer operation %s", x.Op)
	return value{}
}

func promSize(t *ctypes.Type) int64 {
	if t.Size() < 4 {
		return 4
	}
	return t.Size()
}

func ptrElemSize(t *ctypes.Type, pos token.Pos) int64 {
	return sizeOfElem(t.Elem, pos)
}

func cmpInt(op token.Kind, a, b int64, unsigned bool) value {
	var r bool
	if unsigned {
		ua, ub := uint64(a), uint64(b)
		switch op {
		case token.EQL:
			r = ua == ub
		case token.NEQ:
			r = ua != ub
		case token.LSS:
			r = ua < ub
		case token.GTR:
			r = ua > ub
		case token.LEQ:
			r = ua <= ub
		case token.GEQ:
			r = ua >= ub
		}
	} else {
		switch op {
		case token.EQL:
			r = a == b
		case token.NEQ:
			r = a != b
		case token.LSS:
			r = a < b
		case token.GTR:
			r = a > b
		case token.LEQ:
			r = a <= b
		case token.GEQ:
			r = a >= b
		}
	}
	if r {
		return iv(1)
	}
	return iv(0)
}

func cmpFloat(op token.Kind, a, b float64) value {
	var r bool
	switch op {
	case token.EQL:
		r = a == b
	case token.NEQ:
		r = a != b
	case token.LSS:
		r = a < b
	case token.GTR:
		r = a > b
	case token.LEQ:
		r = a <= b
	case token.GEQ:
		r = a >= b
	}
	if r {
		return iv(1)
	}
	return iv(0)
}

// storeSite returns the store access ID attached to an lvalue node.
func storeSite(e ast.Expr) int {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Acc.Store
	case *ast.Index:
		return x.Acc.Store
	case *ast.Member:
		return x.Acc.Store
	case *ast.Unary:
		return x.Acc.Store
	}
	return 0
}

func loadSite(e ast.Expr) int {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Acc.Load
	case *ast.Index:
		return x.Acc.Load
	case *ast.Member:
		return x.Acc.Load
	case *ast.Unary:
		return x.Acc.Load
	}
	return 0
}

func (t *thread) evalAssign(f *frame, x *ast.Assign) value {
	lt := x.LHS.ExprType()

	// Whole-struct assignment is a memcpy.
	if lt.Kind == ctypes.Struct && x.Op == token.ASSIGN {
		dst := t.addr(f, x.LHS)
		src := t.eval(f, x.RHS).I
		size := lt.Size()
		t.touchCache(src)
		t.touchCache(dst)
		if h := t.m.opts.Hooks; h != nil {
			if h.Redirect != nil {
				var c1, c2 int64
				src, c1 = h.Redirect(loadSite(x.RHS), src, size, t.tid)
				dst, c2 = h.Redirect(storeSite(x.LHS), dst, size, t.tid)
				t.counters[CatWork] += c1 + c2
			}
			t.checkAccess(x.Pos(), src, size)
			t.checkAccess(x.Pos(), dst, size)
			if t.isMain {
				if h.Load != nil {
					h.Load(loadSite(x.RHS), src, size)
				}
				if h.Store != nil {
					h.Store(storeSite(x.LHS), dst, size)
				}
			}
			if h.Observe != nil {
				h.Observe(Access{Site: loadSite(x.RHS), Addr: src, Size: size, Tid: t.tid,
					Iter: t.curIter, Ordered: t.inOrdered})
				h.Observe(Access{Site: storeSite(x.LHS), Addr: dst, Size: size, Tid: t.tid,
					Iter: t.curIter, Store: true, Ordered: t.inOrdered})
			}
		} else {
			t.checkAccess(x.Pos(), src, size)
			t.checkAccess(x.Pos(), dst, size)
		}
		t.m.mem.Memcpy(dst, src, size)
		return iv(dst)
	}

	a := t.addr(f, x.LHS)
	var nv value
	if x.Op == token.ASSIGN {
		nv = convert(t.eval(f, x.RHS), x.RHS.ExprType(), lt)
	} else {
		old := t.loadAccess(x.Pos(), loadSite(x.LHS), a, lt)
		rv := t.eval(f, x.RHS)
		nv = compound(x.Pos(), x.Op.CompoundOp(), old, rv, lt, x.RHS.ExprType())
	}
	t.storeAccess(x.Pos(), storeSite(x.LHS), a, lt, nv)
	return nv
}

// compound computes old OP rhs for a compound assignment and converts
// the result back to the LHS type lt.
func compound(pos token.Pos, op token.Kind, old, rv value, lt, rt *ctypes.Type) value {
	// Pointer += / -= integer.
	if lt.Kind == ctypes.Ptr {
		delta := rv.I * sizeOfElem(lt.Elem, pos)
		if op == token.SUB {
			delta = -delta
		}
		return iv(old.I + delta)
	}
	common := ctypes.Common(lt, rt)
	a := convert(old, lt, common)
	b := convert(rv, rt, common)
	var r value
	if common.IsFloat() {
		switch op {
		case token.ADD:
			r = fv(a.F + b.F)
		case token.SUB:
			r = fv(a.F - b.F)
		case token.MUL:
			r = fv(a.F * b.F)
		case token.QUO:
			r = fv(a.F / b.F)
		default:
			rterrf(pos, "bad float compound op %s", op)
		}
	} else {
		switch op {
		case token.ADD:
			r = iv(a.I + b.I)
		case token.SUB:
			r = iv(a.I - b.I)
		case token.MUL:
			r = iv(a.I * b.I)
		case token.QUO:
			if b.I == 0 {
				rterrf(pos, "integer division by zero")
			}
			if common.Unsigned {
				r = iv(int64(uint64(a.I) / uint64(b.I)))
			} else {
				r = iv(a.I / b.I)
			}
		case token.REM:
			if b.I == 0 {
				rterrf(pos, "integer modulo by zero")
			}
			if common.Unsigned {
				r = iv(int64(uint64(a.I) % uint64(b.I)))
			} else {
				r = iv(a.I % b.I)
			}
		case token.SHL:
			r = iv(a.I << uint(b.I&63))
		case token.SHR:
			if lt.Unsigned {
				switch promSize(lt) {
				case 4:
					r = iv(int64(uint32(a.I) >> uint(b.I&63)))
				default:
					r = iv(int64(uint64(a.I) >> uint(b.I&63)))
				}
			} else {
				r = iv(a.I >> uint(b.I&63))
			}
		case token.AND:
			r = iv(a.I & b.I)
		case token.OR:
			r = iv(a.I | b.I)
		case token.XOR:
			r = iv(a.I ^ b.I)
		default:
			rterrf(pos, "bad compound op %s", op)
		}
	}
	return convert(r, common, lt)
}

func (t *thread) evalIncDec(f *frame, x *ast.IncDec) value {
	ty := x.ExprType()
	a := t.addr(f, x.X)
	old := t.loadAccess(x.Pos(), loadSite(x.X), a, ty)
	var nv value
	switch {
	case ty.Kind == ctypes.Ptr:
		d := sizeOfElem(ty.Elem, x.Pos())
		if x.Op == token.DEC {
			d = -d
		}
		nv = iv(old.I + d)
	case ty.IsFloat():
		d := 1.0
		if x.Op == token.DEC {
			d = -1
		}
		nv = convert(fv(old.F+d), ctypes.DoubleType, ty)
	default:
		d := int64(1)
		if x.Op == token.DEC {
			d = -1
		}
		nv = convert(iv(old.I+d), ctypes.LongType, ty)
	}
	t.storeAccess(x.Pos(), storeSite(x.X), a, ty, nv)
	if x.Post {
		return old
	}
	return nv
}
