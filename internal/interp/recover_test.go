package interp

import (
	"errors"
	"testing"
)

func TestRecoveryAdmitDemoteCooldown(t *testing.T) {
	rc := newRecoveryState(RecoverySpec{MaxStrikes: 2, Cooldown: 3}, nil)
	fail := &regionFault{kind: FailViolation, err: errors.New("boom")}

	if !rc.admit(7) {
		t.Fatal("healthy region not admitted")
	}
	rc.noteFailure(7, fail, 1, 100)
	if !rc.admit(7) {
		t.Fatal("one strike below MaxStrikes must still admit")
	}
	rc.noteFailure(7, fail, 2, 200)
	// Second strike: demoted for Cooldown sequential runs.
	for i := 0; i < 3; i++ {
		if rc.admit(7) {
			t.Fatalf("demoted region admitted during cooldown run %d", i)
		}
	}
	// Cooldown elapsed: re-promoted with one remaining strike.
	if !rc.admit(7) {
		t.Fatal("region not re-promoted after cooldown")
	}
	rc.noteFailure(7, fail, 1, 50)
	if rc.admit(7) {
		t.Fatal("re-promoted region must demote again on the next strike")
	}

	st := rc.snapshot()
	if len(st) != 1 {
		t.Fatalf("expected 1 region record, got %d", len(st))
	}
	s := st[0]
	if s.Loop != 7 || s.Violations != 3 || s.Rollbacks != 3 ||
		s.RollbackPages != 4 || s.RollbackBytes != 350 ||
		s.Repromotions != 1 || !s.Demoted {
		t.Fatalf("unexpected stats: %+v", s)
	}
	// SeqRuns: one per rollback (3) + cooldown runs (3 demoted + the
	// final demoted admit) = 7.
	if s.SeqRuns != 7 {
		t.Fatalf("SeqRuns = %d, want 7", s.SeqRuns)
	}
	if s.LastFailure != "boom" {
		t.Fatalf("LastFailure = %q", s.LastFailure)
	}
}

func TestRecoveryDemotedForeverWithoutCooldown(t *testing.T) {
	rc := newRecoveryState(RecoverySpec{MaxStrikes: 1}, nil)
	rc.noteFailure(3, &regionFault{kind: FailTimeout}, 0, 0)
	for i := 0; i < 10; i++ {
		if rc.admit(3) {
			t.Fatal("Cooldown=0 region must stay demoted")
		}
	}
	s := rc.snapshot()[0]
	if s.Timeouts != 1 || !s.Demoted || s.Repromotions != 0 {
		t.Fatalf("unexpected stats: %+v", s)
	}
}

func TestRecoveryStrikesAccumulateAcrossSuccesses(t *testing.T) {
	rc := newRecoveryState(RecoverySpec{}, nil) // defaults: MaxStrikes 2
	fail := &regionFault{kind: FailFault, err: errors.New("oom")}
	rc.noteFailure(1, fail, 0, 0)
	for i := 0; i < 5; i++ {
		rc.noteSuccess(1, 1, 10)
	}
	rc.noteFailure(1, fail, 0, 0)
	if rc.admit(1) {
		t.Fatal("successes must not reset strikes: second failure demotes")
	}
	s := rc.snapshot()[0]
	if s.ParallelRuns != 5 || s.Faults != 2 || s.SnapshotPages != 5 || s.SnapshotBytes != 50 {
		t.Fatalf("unexpected stats: %+v", s)
	}
}

func TestRecoverySnapshotSortedByLoop(t *testing.T) {
	rc := newRecoveryState(RecoverySpec{}, nil)
	rc.noteSuccess(9, 0, 0)
	rc.noteSuccess(2, 0, 0)
	rc.noteSuccess(5, 0, 0)
	st := rc.snapshot()
	if len(st) != 3 || st[0].Loop != 2 || st[1].Loop != 5 || st[2].Loop != 9 {
		t.Fatalf("stats not sorted by loop: %+v", st)
	}
}
