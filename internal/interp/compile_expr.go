package interp

import (
	"math"

	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/token"
)

// fallbackExpr delegates a rarely-executed or error-raising expression
// to the tree-walker, which ticks and faults exactly as specified.
func (c *compiler) fallbackExpr(e ast.Expr) cexpr {
	return func(t *thread, f *frame) value { return t.eval(f, e) }
}

// fallbackAddr delegates an address computation to the tree-walker.
func (c *compiler) fallbackAddr(e ast.Expr) caddr {
	return func(t *thread, f *frame) int64 { return t.addr(f, e) }
}

// compileExpr compiles e to a closure that mirrors eval(e): it ticks
// the work counter once for every node the tree-walker would visit and
// performs the same memory accesses in the same order.
func (c *compiler) compileExpr(e ast.Expr) cexpr {
	if v, n, ok := c.constEval(e); ok {
		return func(t *thread, f *frame) value {
			t.counters[CatWork] += n
			return v
		}
	}
	switch x := e.(type) {
	case *ast.StringLit:
		// Interning stays lazy: eager interning would shift allocation
		// addresses relative to the tree-walker.
		s := x.Value
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			return iv(t.m.internString(s))
		}
	case *ast.Ident:
		return c.compileIdent(x)
	case *ast.Unary:
		return c.compileUnary(x)
	case *ast.Binary:
		return c.compileBinary(x)
	case *ast.Logical:
		return c.compileLogical(x)
	case *ast.Cond:
		return c.compileCond(x)
	case *ast.Assign:
		return c.compileAssign(x)
	case *ast.IncDec:
		return c.compileIncDec(x)
	case *ast.Index:
		return c.compileLoadable(x, x.Acc.Load)
	case *ast.Member:
		return c.compileLoadable(x, x.Acc.Load)
	case *ast.Call:
		return c.compileCall(x)
	case *ast.Cast:
		cv := convC(x.X.ExprType(), x.To)
		cx := c.compileExpr(x.X)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			return cv(cx(t, f))
		}
	case *ast.SizeofType:
		// Static sizes were folded by constEval; reaching here means
		// Size() must fault at evaluation time, as in the tree-walker.
		ty := x.Of
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			return iv(ty.Size())
		}
	case *ast.SizeofExpr:
		ty := x.X.ExprType()
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			return iv(ty.Size())
		}
	}
	return c.fallbackExpr(e)
}

func (c *compiler) compileIdent(x *ast.Ident) cexpr {
	sym := x.Sym
	switch sym.Kind {
	case ast.SymTID:
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			return iv(int64(t.tid))
		}
	case ast.SymNTH:
		nt := int64(c.m.opts.NumThreads)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			return iv(nt)
		}
	case ast.SymFunc, ast.SymBuiltin:
		return c.fallbackExpr(x) // "function %s used as a value"
	}
	if c.isPromoted(sym) {
		return c.promotedLoad(sym, x.Pos())
	}
	ad := c.symAddrC(sym, x.Pos())
	if k := sym.Type.Kind; k == ctypes.Array || k == ctypes.Struct {
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			return iv(ad(t, f))
		}
	}
	ld := c.loadAcc(x.Pos(), x.Acc.Load, sym.Type)
	return func(t *thread, f *frame) value {
		t.counters[CatWork]++
		return ld(t, ad(t, f))
	}
}

// compileLoadable compiles Index and Member rvalues: address plus a
// sited load, or the bare address for array/struct-typed results.
func (c *compiler) compileLoadable(e ast.Expr, site int) cexpr {
	ty := e.ExprType()
	if ty == nil {
		return c.fallbackExpr(e)
	}
	ad := c.compileAddr(e)
	if k := ty.Kind; k == ctypes.Array || k == ctypes.Struct {
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			return iv(ad(t, f))
		}
	}
	ld := c.loadAcc(e.Pos(), site, ty)
	return func(t *thread, f *frame) value {
		t.counters[CatWork]++
		return ld(t, ad(t, f))
	}
}

// compileAddr compiles the lvalue address computation of e, mirroring
// addr(): the node itself does not tick; nested rvalues do.
func (c *compiler) compileAddr(e ast.Expr) caddr {
	switch x := e.(type) {
	case *ast.Ident:
		switch x.Sym.Kind {
		case ast.SymTID, ast.SymNTH:
			return c.fallbackAddr(e) // "%s has no address"
		}
		return c.symAddrC(x.Sym, x.Pos())

	case *ast.Index:
		elem := x.ExprType()
		if esz, ok := staticSizeOfElem(elem); ok {
			if fused := c.fusedIndexAddr(x, esz); fused != nil {
				return fused
			}
			base := c.compileBase(x.X)
			idx := c.compileExpr(x.I)
			return func(t *thread, f *frame) int64 {
				b := base(t, f)
				i := idx(t, f)
				return b + i.I*esz
			}
		}
		base := c.compileBase(x.X)
		idx := c.compileExpr(x.I)
		pos := x.Pos()
		return func(t *thread, f *frame) int64 {
			b := base(t, f)
			i := idx(t, f)
			return b + i.I*sizeOfElem(elem, pos)
		}

	case *ast.Member:
		off := x.Field.Offset
		if x.Arrow {
			cx := c.compileExpr(x.X)
			pos := x.Pos()
			name := x.Name
			return func(t *thread, f *frame) int64 {
				b := cx(t, f).I
				if b == 0 {
					rterrf(pos, "null pointer dereference (->%s)", name)
				}
				return b + off
			}
		}
		if _, isCall := x.X.(*ast.Call); isCall {
			cx := c.compileExpr(x.X)
			return func(t *thread, f *frame) int64 { return cx(t, f).I + off }
		}
		ax := c.compileAddr(x.X)
		return func(t *thread, f *frame) int64 { return ax(t, f) + off }

	case *ast.Unary:
		if x.Op == token.MUL {
			cx := c.compileExpr(x.X)
			pos := x.Pos()
			return func(t *thread, f *frame) int64 {
				p := cx(t, f)
				if p.I == 0 {
					rterrf(pos, "null pointer dereference")
				}
				return p.I
			}
		}
	}
	return c.fallbackAddr(e) // "expression has no address"
}

// compileBase compiles evalBase(e): arrays yield their address (no
// tick for the node), everything else its rvalue.
func (c *compiler) compileBase(e ast.Expr) caddr {
	if ty := e.ExprType(); ty != nil && ty.Kind == ctypes.Array {
		return c.compileAddr(e)
	}
	cx := c.compileExpr(e)
	return func(t *thread, f *frame) int64 { return cx(t, f).I }
}

func (c *compiler) compileUnary(x *ast.Unary) cexpr {
	rt := x.ExprType()
	switch x.Op {
	case token.AND:
		ad := c.compileAddr(x.X)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			return iv(ad(t, f))
		}
	case token.MUL:
		if rt == nil {
			return c.fallbackExpr(x)
		}
		ad := c.compileAddr(x) // includes the null check
		if k := rt.Kind; k == ctypes.Array || k == ctypes.Struct {
			return func(t *thread, f *frame) value {
				t.counters[CatWork]++
				return iv(ad(t, f))
			}
		}
		ld := c.loadAcc(x.Pos(), x.Acc.Load, rt)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			return ld(t, ad(t, f))
		}
	case token.SUB:
		cx := c.compileExpr(x.X)
		if rt.IsFloat() {
			tf := toFloatC(x.X.ExprType())
			return func(t *thread, f *frame) value {
				t.counters[CatWork]++
				return fv(-tf(cx(t, f)))
			}
		}
		tr := truncC(rt)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			return tr(-cx(t, f).I)
		}
	case token.ADD:
		cx := c.compileExpr(x.X)
		cv := convC(x.X.ExprType(), rt)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			return cv(cx(t, f))
		}
	case token.NOT:
		cx := c.compileExpr(x.X)
		tr := truncC(rt)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			return tr(^cx(t, f).I)
		}
	case token.LNOT:
		cx := c.compileExpr(x.X)
		tx := truthC(x.X.ExprType())
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			if tx(cx(t, f)) {
				return iv(0)
			}
			return iv(1)
		}
	}
	return c.fallbackExpr(x) // "bad unary operator"
}

func (c *compiler) compileLogical(x *ast.Logical) cexpr {
	cx := c.compileExpr(x.X)
	cy := c.compileExpr(x.Y)
	tx := truthC(x.X.ExprType())
	ty := truthC(x.Y.ExprType())
	if x.Op == token.LAND {
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			if !tx(cx(t, f)) {
				return iv(0)
			}
			if ty(cy(t, f)) {
				return iv(1)
			}
			return iv(0)
		}
	}
	return func(t *thread, f *frame) value {
		t.counters[CatWork]++
		if tx(cx(t, f)) {
			return iv(1)
		}
		if ty(cy(t, f)) {
			return iv(1)
		}
		return iv(0)
	}
}

func (c *compiler) compileCond(x *ast.Cond) cexpr {
	cc := c.compileExpr(x.C)
	tc := truthC(x.C.ExprType())
	ct := c.compileExpr(x.Then)
	cvt := convC(x.Then.ExprType(), x.ExprType())
	ce := c.compileExpr(x.Else)
	cve := convC(x.Else.ExprType(), x.ExprType())
	return func(t *thread, f *frame) value {
		t.counters[CatWork]++
		if tc(cc(t, f)) {
			return cvt(ct(t, f))
		}
		return cve(ce(t, f))
	}
}

func (c *compiler) compileBinary(x *ast.Binary) cexpr {
	xt, yt := x.X.ExprType(), x.Y.ExprType()
	if xt == nil || yt == nil {
		return c.fallbackExpr(x)
	}
	xIsPtr := xt.Kind == ctypes.Ptr || xt.Kind == ctypes.Array
	yIsPtr := yt.Kind == ctypes.Ptr || yt.Kind == ctypes.Array

	if xIsPtr || yIsPtr {
		return c.compilePtrBinary(x, xt, yt, xIsPtr, yIsPtr)
	}

	common := ctypes.Common(xt, yt)
	// Fused operands (constants, promoted scalars) evaluate unticked;
	// their static tick counts fold into the node's own bump. Identity
	// conversions drop out of the fused kernels entirely.
	n := int64(1)
	var ex, ey cexpr
	if fx, xn, ok := c.fuseOperand(x.X); ok {
		ex, n = fx, n+xn
	} else {
		ex = c.compileExpr(x.X)
	}
	if fy, yn, ok := c.fuseOperand(x.Y); ok {
		ey, n = fy, n+yn
	} else {
		ey = c.compileExpr(x.Y)
	}
	var cvx, cvy cconv
	skipConv := false
	if c.opt.fuse {
		cvxn, cvyn := convNC(xt, common), convNC(yt, common)
		skipConv = cvxn == nil && cvyn == nil
		cvx, cvy = orIdent(cvxn), orIdent(cvyn)
	} else {
		cvx, cvy = convC(xt, common), convC(yt, common)
	}

	// mk wires the converted operands into a binary kernel.
	mk := func(op2 func(a, b value) value) cexpr {
		if skipConv {
			return func(t *thread, f *frame) value {
				t.counters[CatWork] += n
				a := ex(t, f)
				b := ey(t, f)
				return op2(a, b)
			}
		}
		return func(t *thread, f *frame) value {
			t.counters[CatWork] += n
			a := cvx(ex(t, f))
			b := cvy(ey(t, f))
			return op2(a, b)
		}
	}

	if common.IsFloat() {
		switch x.Op {
		case token.ADD:
			return mk(func(a, b value) value { return fv(a.F + b.F) })
		case token.SUB:
			return mk(func(a, b value) value { return fv(a.F - b.F) })
		case token.MUL:
			return mk(func(a, b value) value { return fv(a.F * b.F) })
		case token.QUO:
			return mk(func(a, b value) value { return fv(a.F / b.F) })
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			cmp := cmpFloatOpC(x.Op)
			return mk(func(a, b value) value { return cmp(a.F, b.F) })
		}
		return c.fallbackExpr(x) // "bad float operation"
	}

	rt := x.ExprType()
	if rt == nil {
		return c.fallbackExpr(x)
	}
	tr := truncC(rt)
	pos := x.Pos()
	switch x.Op {
	case token.ADD:
		return mk(func(a, b value) value { return tr(a.I + b.I) })
	case token.SUB:
		return mk(func(a, b value) value { return tr(a.I - b.I) })
	case token.MUL:
		return mk(func(a, b value) value { return tr(a.I * b.I) })
	case token.QUO:
		if common.Unsigned {
			return mk(func(a, b value) value {
				if b.I == 0 {
					rterrf(pos, "integer division by zero")
				}
				return tr(int64(uint64(a.I) / uint64(b.I)))
			})
		}
		return mk(func(a, b value) value {
			if b.I == 0 {
				rterrf(pos, "integer division by zero")
			}
			return tr(a.I / b.I)
		})
	case token.REM:
		if common.Unsigned {
			return mk(func(a, b value) value {
				if b.I == 0 {
					rterrf(pos, "integer modulo by zero")
				}
				return tr(int64(uint64(a.I) % uint64(b.I)))
			})
		}
		return mk(func(a, b value) value {
			if b.I == 0 {
				rterrf(pos, "integer modulo by zero")
			}
			return tr(a.I % b.I)
		})
	case token.SHL:
		return mk(func(a, b value) value { return tr(a.I << uint(b.I&63)) })
	case token.SHR:
		if xt.Unsigned {
			if promSize(xt) == 4 {
				return mk(func(a, b value) value { return tr(int64(uint32(a.I) >> uint(b.I&63))) })
			}
			return mk(func(a, b value) value { return tr(int64(uint64(a.I) >> uint(b.I&63))) })
		}
		return mk(func(a, b value) value { return tr(a.I >> uint(b.I&63)) })
	case token.AND:
		return mk(func(a, b value) value { return tr(a.I & b.I) })
	case token.OR:
		return mk(func(a, b value) value { return tr(a.I | b.I) })
	case token.XOR:
		return mk(func(a, b value) value { return tr(a.I ^ b.I) })
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		cmp := cmpIntOpC(x.Op, common.Unsigned)
		return mk(func(a, b value) value { return cmp(a.I, b.I) })
	}
	return c.fallbackExpr(x) // "bad integer operation"
}

// compilePtrBinary compiles pointer arithmetic and pointer comparison,
// mirroring the pointer branch of evalBinary.
func (c *compiler) compilePtrBinary(x *ast.Binary, xt, yt *ctypes.Type, xIsPtr, yIsPtr bool) cexpr {
	var cx, cy caddr
	if xIsPtr {
		cx = c.compileBase(x.X)
	} else {
		ex := c.compileExpr(x.X)
		cx = func(t *thread, f *frame) int64 { return ex(t, f).I }
	}
	if yIsPtr {
		cy = c.compileBase(x.Y)
	} else {
		ey := c.compileExpr(x.Y)
		cy = func(t *thread, f *frame) int64 { return ey(t, f).I }
	}
	pos := x.Pos()

	// elemScale mirrors ptrElemSize(pt, pos) with the size resolved at
	// compile time when static; the dynamic path faults like the tree.
	elemScale := func(pt *ctypes.Type) func() int64 {
		if pt != nil {
			if esz, ok := staticSizeOfElem(pt.Elem); ok {
				return func() int64 { return esz }
			}
		}
		return func() int64 { return ptrElemSize(pt, pos) }
	}

	switch x.Op {
	case token.ADD:
		if xIsPtr {
			esz := elemScale(xt)
			return func(t *thread, f *frame) value {
				t.counters[CatWork]++
				a := cx(t, f)
				b := cy(t, f)
				return iv(a + b*esz())
			}
		}
		esz := elemScale(yt)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			a := cx(t, f)
			b := cy(t, f)
			return iv(b + a*esz())
		}
	case token.SUB:
		// The tree-walker scales by xt's element size even when only the
		// right operand is a pointer; keep that behaviour bit for bit.
		esz := elemScale(xt)
		if xIsPtr && yIsPtr {
			return func(t *thread, f *frame) value {
				t.counters[CatWork]++
				a := cx(t, f)
				b := cy(t, f)
				return iv((a - b) / esz())
			}
		}
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			a := cx(t, f)
			b := cy(t, f)
			return iv(a - b*esz())
		}
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		cmp := cmpIntOpC(x.Op, false)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			a := cx(t, f)
			b := cy(t, f)
			return cmp(a, b)
		}
	}
	return c.fallbackExpr(x) // "bad pointer operation"
}

func cmpIntOpC(op token.Kind, unsigned bool) func(a, b int64) value {
	bool2v := func(r bool) value {
		if r {
			return iv(1)
		}
		return iv(0)
	}
	if unsigned {
		switch op {
		case token.EQL:
			return func(a, b int64) value { return bool2v(uint64(a) == uint64(b)) }
		case token.NEQ:
			return func(a, b int64) value { return bool2v(uint64(a) != uint64(b)) }
		case token.LSS:
			return func(a, b int64) value { return bool2v(uint64(a) < uint64(b)) }
		case token.GTR:
			return func(a, b int64) value { return bool2v(uint64(a) > uint64(b)) }
		case token.LEQ:
			return func(a, b int64) value { return bool2v(uint64(a) <= uint64(b)) }
		default:
			return func(a, b int64) value { return bool2v(uint64(a) >= uint64(b)) }
		}
	}
	switch op {
	case token.EQL:
		return func(a, b int64) value { return bool2v(a == b) }
	case token.NEQ:
		return func(a, b int64) value { return bool2v(a != b) }
	case token.LSS:
		return func(a, b int64) value { return bool2v(a < b) }
	case token.GTR:
		return func(a, b int64) value { return bool2v(a > b) }
	case token.LEQ:
		return func(a, b int64) value { return bool2v(a <= b) }
	default:
		return func(a, b int64) value { return bool2v(a >= b) }
	}
}

func cmpFloatOpC(op token.Kind) func(a, b float64) value {
	bool2v := func(r bool) value {
		if r {
			return iv(1)
		}
		return iv(0)
	}
	switch op {
	case token.EQL:
		return func(a, b float64) value { return bool2v(a == b) }
	case token.NEQ:
		return func(a, b float64) value { return bool2v(a != b) }
	case token.LSS:
		return func(a, b float64) value { return bool2v(a < b) }
	case token.GTR:
		return func(a, b float64) value { return bool2v(a > b) }
	case token.LEQ:
		return func(a, b float64) value { return bool2v(a <= b) }
	default:
		return func(a, b float64) value { return bool2v(a >= b) }
	}
}

func (c *compiler) compileAssign(x *ast.Assign) cexpr {
	lt := x.LHS.ExprType()
	if lt == nil {
		return c.fallbackExpr(x)
	}

	// Whole-struct assignment is a hooked memcpy.
	if lt.Kind == ctypes.Struct && x.Op == token.ASSIGN {
		size := lt.Size()
		ad := c.compileAddr(x.LHS)
		cr := c.compileExpr(x.RHS)
		lsite := loadSite(x.RHS)
		ssite := storeSite(x.LHS)
		pos := x.Pos()
		h := c.hooks
		mm := c.mem
		if h == nil {
			return func(t *thread, f *frame) value {
				t.counters[CatWork]++
				dst := ad(t, f)
				src := cr(t, f).I
				t.touchCache(src)
				t.touchCache(dst)
				t.checkAccess(pos, src, size)
				t.checkAccess(pos, dst, size)
				mm.Memcpy(dst, src, size)
				return iv(dst)
			}
		}
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			dst := ad(t, f)
			src := cr(t, f).I
			t.touchCache(src)
			t.touchCache(dst)
			if h.Redirect != nil {
				var c1, c2 int64
				src, c1 = h.Redirect(lsite, src, size, t.tid)
				dst, c2 = h.Redirect(ssite, dst, size, t.tid)
				t.counters[CatWork] += c1 + c2
			}
			t.checkAccess(pos, src, size)
			t.checkAccess(pos, dst, size)
			if t.isMain {
				if h.Load != nil {
					h.Load(lsite, src, size)
				}
				if h.Store != nil {
					h.Store(ssite, dst, size)
				}
			}
			if h.Observe != nil {
				h.Observe(Access{Site: lsite, Addr: src, Size: size, Tid: t.tid,
					Iter: t.curIter, Ordered: t.inOrdered})
				h.Observe(Access{Site: ssite, Addr: dst, Size: size, Tid: t.tid,
					Iter: t.curIter, Store: true, Ordered: t.inOrdered})
			}
			mm.Memcpy(dst, src, size)
			return iv(dst)
		}
	}

	if id, ok := x.LHS.(*ast.Ident); ok && c.isPromoted(id.Sym) {
		return c.compilePromotedAssign(x, id)
	}
	ad := c.compileAddr(x.LHS)
	cr := c.compileExpr(x.RHS)
	if x.Op == token.ASSIGN {
		cv := convC(x.RHS.ExprType(), lt)
		st := c.storeAcc(x.Pos(), storeSite(x.LHS), lt)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			a := ad(t, f)
			nv := cv(cr(t, f))
			st(t, a, nv)
			return nv
		}
	}
	ld := c.loadAcc(x.Pos(), loadSite(x.LHS), lt)
	cop := compoundC(x.Pos(), x.Op.CompoundOp(), lt, x.RHS.ExprType())
	st := c.storeAcc(x.Pos(), storeSite(x.LHS), lt)
	return func(t *thread, f *frame) value {
		t.counters[CatWork]++
		a := ad(t, f)
		old := ld(t, a)
		rv := cr(t, f)
		nv := cop(old, rv)
		st(t, a, nv)
		return nv
	}
}

// compoundC compiles compound() for the statically known operator and
// operand types. Anything unusual falls back to the shared routine.
func compoundC(pos token.Pos, op token.Kind, lt, rt *ctypes.Type) func(old, rv value) value {
	generic := func(old, rv value) value { return compound(pos, op, old, rv, lt, rt) }

	if lt.Kind == ctypes.Ptr {
		esz, ok := staticSizeOfElem(lt.Elem)
		if !ok {
			return generic
		}
		// Mirror the tree-walker: SUB negates the delta, every other
		// compound operator on a pointer behaves like ADD.
		if op == token.SUB {
			return func(old, rv value) value { return iv(old.I - rv.I*esz) }
		}
		return func(old, rv value) value { return iv(old.I + rv.I*esz) }
	}
	if rt == nil {
		return generic
	}

	common := ctypes.Common(lt, rt)
	ca := convC(lt, common)
	cb := convC(rt, common)
	back := convC(common, lt)

	if common.IsFloat() {
		switch op {
		case token.ADD:
			return func(old, rv value) value { return back(fv(ca(old).F + cb(rv).F)) }
		case token.SUB:
			return func(old, rv value) value { return back(fv(ca(old).F - cb(rv).F)) }
		case token.MUL:
			return func(old, rv value) value { return back(fv(ca(old).F * cb(rv).F)) }
		case token.QUO:
			return func(old, rv value) value { return back(fv(ca(old).F / cb(rv).F)) }
		}
		return generic
	}

	switch op {
	case token.ADD:
		return func(old, rv value) value { return back(iv(ca(old).I + cb(rv).I)) }
	case token.SUB:
		return func(old, rv value) value { return back(iv(ca(old).I - cb(rv).I)) }
	case token.MUL:
		return func(old, rv value) value { return back(iv(ca(old).I * cb(rv).I)) }
	case token.QUO:
		if common.Unsigned {
			return func(old, rv value) value {
				b := cb(rv).I
				if b == 0 {
					rterrf(pos, "integer division by zero")
				}
				return back(iv(int64(uint64(ca(old).I) / uint64(b))))
			}
		}
		return func(old, rv value) value {
			b := cb(rv).I
			if b == 0 {
				rterrf(pos, "integer division by zero")
			}
			return back(iv(ca(old).I / b))
		}
	case token.REM:
		if common.Unsigned {
			return func(old, rv value) value {
				b := cb(rv).I
				if b == 0 {
					rterrf(pos, "integer modulo by zero")
				}
				return back(iv(int64(uint64(ca(old).I) % uint64(b))))
			}
		}
		return func(old, rv value) value {
			b := cb(rv).I
			if b == 0 {
				rterrf(pos, "integer modulo by zero")
			}
			return back(iv(ca(old).I % b))
		}
	case token.SHL:
		return func(old, rv value) value { return back(iv(ca(old).I << uint(cb(rv).I&63))) }
	case token.SHR:
		if lt.Unsigned {
			if promSize(lt) == 4 {
				return func(old, rv value) value {
					return back(iv(int64(uint32(ca(old).I) >> uint(cb(rv).I&63))))
				}
			}
			return func(old, rv value) value {
				return back(iv(int64(uint64(ca(old).I) >> uint(cb(rv).I&63))))
			}
		}
		return func(old, rv value) value { return back(iv(ca(old).I >> uint(cb(rv).I&63))) }
	case token.AND:
		return func(old, rv value) value { return back(iv(ca(old).I & cb(rv).I)) }
	case token.OR:
		return func(old, rv value) value { return back(iv(ca(old).I | cb(rv).I)) }
	case token.XOR:
		return func(old, rv value) value { return back(iv(ca(old).I ^ cb(rv).I)) }
	}
	return generic
}

// incDecStep compiles the ±1 update for an increment or decrement of
// type ty, shared by the generic and register-promoted emitters.
func (c *compiler) incDecStep(x *ast.IncDec, ty *ctypes.Type) func(old value) value {
	dec := x.Op == token.DEC
	switch {
	case ty.Kind == ctypes.Ptr:
		if esz, ok := staticSizeOfElem(ty.Elem); ok {
			d := esz
			if dec {
				d = -d
			}
			return func(old value) value { return iv(old.I + d) }
		}
		pos := x.Pos()
		et := ty.Elem
		return func(old value) value {
			d := sizeOfElem(et, pos)
			if dec {
				d = -d
			}
			return iv(old.I + d)
		}
	case ty.IsFloat():
		d := 1.0
		if dec {
			d = -1
		}
		cv := convC(ctypes.DoubleType, ty)
		return func(old value) value { return cv(fv(old.F + d)) }
	default:
		d := int64(1)
		if dec {
			d = -1
		}
		cv := convC(ctypes.LongType, ty)
		return func(old value) value { return cv(iv(old.I + d)) }
	}
}

func (c *compiler) compileIncDec(x *ast.IncDec) cexpr {
	ty := x.ExprType()
	if ty == nil {
		return c.fallbackExpr(x)
	}
	if id, ok := x.X.(*ast.Ident); ok && c.isPromoted(id.Sym) {
		return c.compilePromotedIncDec(x, id)
	}
	ad := c.compileAddr(x.X)
	ld := c.loadAcc(x.Pos(), loadSite(x.X), ty)
	st := c.storeAcc(x.Pos(), storeSite(x.X), ty)
	step := c.incDecStep(x, ty)

	if x.Post {
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			a := ad(t, f)
			old := ld(t, a)
			st(t, a, step(old))
			return old
		}
	}
	return func(t *thread, f *frame) value {
		t.counters[CatWork]++
		a := ad(t, f)
		nv := step(ld(t, a))
		st(t, a, nv)
		return nv
	}
}

func (c *compiler) compileCall(x *ast.Call) cexpr {
	sym := x.Fun.Sym
	pos := x.Pos()

	if sym.Kind == ast.SymFunc {
		cf := c.prog.funcs[sym.Fn]
		if cf == nil {
			return c.fallbackExpr(x)
		}
		n := len(x.Args)
		if n == 0 {
			return func(t *thread, f *frame) value {
				t.counters[CatWork]++
				return t.callCompiled(cf, nil, pos)
			}
		}
		cargs := make([]cexpr, n)
		convs := make([]cconv, n)
		for i, a := range x.Args {
			cargs[i] = c.compileExpr(a)
			convs[i] = convC(a.ExprType(), sym.Type.Params[i])
		}
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			args := make([]value, n)
			for i, ca := range cargs {
				args[i] = convs[i](ca(t, f))
			}
			return t.callCompiled(cf, args, pos)
		}
	}
	if sym.Kind != ast.SymBuiltin {
		return c.fallbackExpr(x)
	}
	return c.compileBuiltin(x)
}

func (c *compiler) compileBuiltin(x *ast.Call) cexpr {
	sym := x.Fun.Sym
	pos := x.Pos()
	site := x.AllocSite
	defSite := x.Acc.Store
	h := c.hooks
	mm := c.mem

	// allocDef mirrors the fresh-block definition report of evalCall.
	allocDef := func(t *thread, base, size int64) {
		if h != nil {
			if h.Store != nil && t.isMain {
				h.Store(defSite, base, size)
			}
			if h.Observe != nil {
				h.Observe(Access{Site: defSite, Addr: base, Size: size, Tid: t.tid,
					Iter: t.curIter, Store: true, Def: true, Ordered: t.inOrdered})
			}
		}
	}
	arg := func(i int) cexpr { return c.compileExpr(x.Args[i]) }

	switch sym.Builtin {
	case ast.BMalloc:
		a0 := arg(0)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			n := a0(t, f).I
			a, err := mm.AllocOn(t.allocTid(), n, site, "")
			if err != nil {
				rterrf(pos, "%v", err)
			}
			allocDef(t, a, n)
			return iv(a)
		}
	case ast.BCalloc:
		a0, a1 := arg(0), arg(1)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			n := a0(t, f).I * a1(t, f).I
			a, err := mm.AllocOn(t.allocTid(), n, site, "")
			if err != nil {
				rterrf(pos, "%v", err)
			}
			allocDef(t, a, n)
			return iv(a)
		}
	case ast.BRealloc:
		a0, a1 := arg(0), arg(1)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			p := a0(t, f).I
			n := a1(t, f).I
			if h != nil && h.Free != nil && p != 0 {
				h.Free(p)
			}
			a, err := mm.ReallocOn(t.allocTid(), p, n, site)
			if err != nil {
				rterrf(pos, "%v", err)
			}
			allocDef(t, a, n)
			return iv(a)
		}
	case ast.BFree:
		a0 := arg(0)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			p := a0(t, f).I
			if h != nil && h.Free != nil && p != 0 {
				h.Free(p)
			}
			if err := mm.Free(p); err != nil {
				rterrf(pos, "%v", err)
			}
			return value{}
		}
	case ast.BMemset:
		a0, a1, a2 := arg(0), arg(1), arg(2)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			p, v, n := a0(t, f).I, a1(t, f).I, a2(t, f).I
			if n > 0 {
				t.checkAccess(pos, p, n)
				mm.Memset(p, byte(v), n)
			}
			return value{}
		}
	case ast.BMemcpy:
		a0, a1, a2 := arg(0), arg(1), arg(2)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			d, s, n := a0(t, f).I, a1(t, f).I, a2(t, f).I
			if n > 0 {
				t.checkAccess(pos, s, n)
				t.checkAccess(pos, d, n)
				mm.Memcpy(d, s, n)
			}
			return value{}
		}
	case ast.BExpandMalloc:
		// Guard marker for an expanded allocation; see evalCall.
		a0, a1 := arg(0), arg(1)
		nt := int64(c.m.opts.NumThreads)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			span := a0(t, f).I
			esz := a1(t, f).I
			n := span * nt
			a, err := mm.AllocOn(t.allocTid(), n, site, "")
			if err != nil {
				rterrf(pos, "%v", err)
			}
			if h != nil && h.Expand != nil {
				h.Expand(a, span, esz)
			}
			allocDef(t, a, n)
			return iv(a)
		}
	case ast.BExpandNote:
		a0, a1, a2 := arg(0), arg(1), arg(2)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			base, span, esz := a0(t, f).I, a1(t, f).I, a2(t, f).I
			if h != nil && h.Expand != nil {
				h.Expand(base, span, esz)
			}
			return value{}
		}
	case ast.BCommNote:
		a0, a1, a2, a3 := arg(0), arg(1), arg(2), arg(3)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			base, span, esz, op := a0(t, f).I, a1(t, f).I, a2(t, f).I, a3(t, f).I
			if h != nil && h.Commute != nil {
				h.Commute(base, span, esz, op)
			}
			return value{}
		}
	case ast.BPrintInt, ast.BPrintLong:
		a0 := arg(0)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			t.m.printf("%d", a0(t, f).I)
			return value{}
		}
	case ast.BPrintDouble:
		a0 := arg(0)
		tf := toFloatC(x.Args[0].ExprType())
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			t.m.printf("%.6f", tf(a0(t, f)))
			return value{}
		}
	case ast.BPrintChar:
		a0 := arg(0)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			t.m.printf("%c", rune(a0(t, f).I))
			return value{}
		}
	case ast.BPrintStr:
		a0 := arg(0)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			p := a0(t, f).I
			var bs []byte
			for {
				t.checkAccess(pos, p, 1)
				b := byte(mm.Load1(p))
				if b == 0 {
					break
				}
				bs = append(bs, b)
				p++
			}
			t.m.printf("%s", bs)
			return value{}
		}
	case ast.BSqrt:
		a0 := arg(0)
		tf := toFloatC(x.Args[0].ExprType())
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			return fv(math.Sqrt(tf(a0(t, f))))
		}
	case ast.BFabs:
		a0 := arg(0)
		tf := toFloatC(x.Args[0].ExprType())
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			return fv(math.Abs(tf(a0(t, f))))
		}
	case ast.BAbs:
		a0 := arg(0)
		return func(t *thread, f *frame) value {
			t.counters[CatWork]++
			v := a0(t, f).I
			if v < 0 {
				v = -v
			}
			return iv(v)
		}
	}
	return c.fallbackExpr(x) // "unknown builtin"
}
