// Closure-compilation execution engine (EngineCompiled).
//
// After sema, compileProgram walks each function body exactly once and
// produces a tree of Go closures mirroring the tree-walking
// interpreter in eval.go / exec.go node for node:
//
//   - identifiers resolve to a fixed frame-slot or global-table index
//     at compile time (no symbol-kind switch per access),
//   - types, access widths, conversion paths and element sizes are
//     chosen once (no ctypes dispatch per evaluation),
//   - constant subtrees fold to a single closure that bumps the work
//     counter by the subtree's static node count,
//   - the per-node `switch x := e.(type)` disappears from the hot
//     path: each closure calls its children directly.
//
// The engine is behaviourally identical to the tree-walker: it fires
// every Hooks callback (Load/Store/LoopEnter/LoopIter/LoopExit/
// Redirect/Free/ParallelStart/ParallelEnd) at the same program points
// with the same access-site IDs, maintains the same work/sync/wait
// counters and cache-model traffic, and raises the same runtime
// errors at the same positions. Cold paths that run a handful of
// times per loop instance (parallel-loop bound computation, global
// initialization) intentionally reuse the tree-walker so the two
// engines cannot drift there.
package interp

import (
	"math"

	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/mem"
	"gdsx/internal/token"
)

// cstmt executes one compiled statement.
type cstmt func(t *thread, f *frame) ctrl

// cexpr computes the rvalue of one compiled expression.
type cexpr func(t *thread, f *frame) value

// caddr computes the lvalue address of one compiled expression.
type caddr func(t *thread, f *frame) int64

// cconv converts a value between two statically known types.
type cconv func(v value) value

// compiledFunc is one closure-compiled function body.
type compiledFunc struct {
	fn   *ast.FuncDecl
	body cstmt
	// nregs is the register-file size callCompiled allocates for the
	// frame; 0 unless the optimizing compiler promoted something.
	nregs int
	// pparams maps argument positions to the register slots of
	// promoted parameters.
	pparams []promotedParam
}

// promotedParam records that argument arg of a call initializes the
// frame register of the parameter at slot index slot.
type promotedParam struct {
	arg, slot int
}

// compiledProg holds the compiled bodies of every function in a
// program, keyed by declaration (declarations are shared pointers).
type compiledProg struct {
	funcs map[*ast.FuncDecl]*compiledFunc
}

// compiler compiles one program for one machine. Options are fixed at
// Machine creation, so hook presence, thread count and the op budget
// specialize the generated closures.
type compiler struct {
	m     *Machine
	mem   *mem.Memory
	hooks *Hooks // nil when the machine runs without hooks
	prog  *compiledProg
	curFn *ast.FuncDecl
	maxOp int64
	// cancellable compiles the cooperative-cancellation poll into every
	// statement tick; set when the machine runs under Options.Ctx.
	cancellable bool
	// opt holds the resolved optimization-pipeline switches (opt.go).
	opt optConfig
	// promoted flags, by Symbol.Index, which of curFn's slots live in
	// frame registers; nil when nothing in curFn is promoted.
	promoted []bool
}

// compileProgram compiles every function of m's program. Functions
// may be mutually recursive, so the compiledFunc shells are created
// first and the bodies filled in a second pass.
func compileProgram(m *Machine) *compiledProg {
	c := &compiler{
		m:     m,
		mem:   m.mem,
		hooks: m.opts.Hooks,
		prog:  &compiledProg{funcs: map[*ast.FuncDecl]*compiledFunc{}},
		maxOp: m.opts.MaxOps,
		opt:   newOptConfig(m),
	}
	c.cancellable = m.opts.Ctx != nil && m.opts.Ctx.Done() != nil
	fns := m.prog.Funcs()
	for _, fn := range fns {
		c.prog.funcs[fn] = &compiledFunc{fn: fn}
	}
	for _, fn := range fns {
		c.curFn = fn
		c.promoted = c.promotableSlots(fn)
		cf := c.prog.funcs[fn]
		cf.body = c.compileBlock(fn.Body)
		if c.promoted != nil {
			cf.nregs = fn.NumSlots
			for i, p := range fn.Params {
				if c.promoted[p.Sym.Index] {
					cf.pparams = append(cf.pparams, promotedParam{arg: i, slot: p.Sym.Index})
				}
			}
		}
	}
	return c.prog
}

// ---------------------------------------------------------------------
// Type-directed helper compilation
// ---------------------------------------------------------------------

func idConv(v value) value { return v }

// truncC compiles truncInt for the statically known integer type t.
func truncC(t *ctypes.Type) func(int64) value {
	if !t.HasStaticSize() {
		// Mirror the tree-walker: the size computation itself faults at
		// evaluation time, not at compile time.
		return func(i int64) value { return truncInt(i, t) }
	}
	switch t.Size() {
	case 1:
		if t.Unsigned {
			return func(i int64) value { return iv(int64(uint8(i))) }
		}
		return func(i int64) value { return iv(int64(int8(i))) }
	case 2:
		if t.Unsigned {
			return func(i int64) value { return iv(int64(uint16(i))) }
		}
		return func(i int64) value { return iv(int64(int16(i))) }
	case 4:
		if t.Unsigned {
			return func(i int64) value { return iv(int64(uint32(i))) }
		}
		return func(i int64) value { return iv(int64(int32(i))) }
	default:
		return func(i int64) value { return iv(i) }
	}
}

// convC compiles convert for the statically known (from, to) pair.
func convC(from, to *ctypes.Type) cconv {
	if from == nil || to == nil {
		return idConv
	}
	if from.Kind == ctypes.Array {
		return idConv // decayed address
	}
	switch {
	case to.IsFloat() && from.IsFloat():
		if to.Kind == ctypes.Float {
			return func(v value) value { return fv(float64(float32(v.F))) }
		}
		return idConv
	case to.IsFloat():
		if from.Unsigned {
			return func(v value) value { return fv(float64(uint64(v.I))) }
		}
		return func(v value) value { return fv(float64(v.I)) }
	case from.IsFloat(): // to integer
		tr := truncC(to)
		return func(v value) value { return tr(int64(v.F)) }
	case to.Kind == ctypes.Ptr:
		return idConv
	case to.IsInteger():
		tr := truncC(to)
		return func(v value) value { return tr(v.I) }
	}
	return idConv
}

// truthC compiles truth for the statically known type t.
func truthC(t *ctypes.Type) func(value) bool {
	if t != nil && t.IsFloat() {
		return func(v value) bool { return v.F != 0 }
	}
	return func(v value) bool { return v.I != 0 }
}

// toFloatC compiles toFloat for the statically known type t.
func toFloatC(t *ctypes.Type) func(value) float64 {
	if t.IsFloat() {
		return func(v value) float64 { return v.F }
	}
	if t.Unsigned {
		return func(v value) float64 { return float64(uint64(v.I)) }
	}
	return func(v value) float64 { return float64(v.I) }
}

// staticSizeOfElem mirrors sizeOfElem's result for types whose size is
// statically known; ok == false means the tree-walker would raise a
// runtime error (or needs a dynamic computation) for this type.
func staticSizeOfElem(t *ctypes.Type) (int64, bool) {
	if t == nil {
		return 0, false
	}
	if t.Kind == ctypes.Void {
		return 1, true
	}
	if !t.HasStaticSize() {
		return 0, false
	}
	return t.Size(), true
}

// loaderFor compiles loadTyped for the statically known type ty.
func (c *compiler) loaderFor(ty *ctypes.Type) func(t *thread, addr int64) value {
	mm := c.mem
	switch ty.Kind {
	case ctypes.Float:
		return func(t *thread, addr int64) value {
			return fv(float64(math.Float32frombits(uint32(mm.Load4(addr)))))
		}
	case ctypes.Double:
		return func(t *thread, addr int64) value {
			return fv(math.Float64frombits(mm.Load8(addr)))
		}
	case ctypes.Ptr:
		return func(t *thread, addr int64) value { return iv(int64(mm.Load8(addr))) }
	}
	if !ty.HasStaticSize() {
		return func(t *thread, addr int64) value { return t.loadTyped(addr, ty) }
	}
	switch ty.Size() {
	case 1:
		if ty.Unsigned {
			return func(t *thread, addr int64) value { return iv(int64(uint8(mm.Load1(addr)))) }
		}
		return func(t *thread, addr int64) value { return iv(int64(int8(mm.Load1(addr)))) }
	case 2:
		if ty.Unsigned {
			return func(t *thread, addr int64) value { return iv(int64(uint16(mm.Load2(addr)))) }
		}
		return func(t *thread, addr int64) value { return iv(int64(int16(mm.Load2(addr)))) }
	case 4:
		if ty.Unsigned {
			return func(t *thread, addr int64) value { return iv(int64(uint32(mm.Load4(addr)))) }
		}
		return func(t *thread, addr int64) value { return iv(int64(int32(mm.Load4(addr)))) }
	case 8:
		return func(t *thread, addr int64) value { return iv(int64(mm.Load8(addr))) }
	}
	// Odd width (e.g. a struct type reaching a scalar load): fall back
	// to the generic path, which faults exactly like the tree-walker.
	return func(t *thread, addr int64) value { return t.loadTyped(addr, ty) }
}

// storerFor compiles storeTyped for the statically known type ty.
func (c *compiler) storerFor(ty *ctypes.Type) func(t *thread, addr int64, v value) {
	mm := c.mem
	switch ty.Kind {
	case ctypes.Float:
		return func(t *thread, addr int64, v value) {
			mm.Store4(addr, uint64(math.Float32bits(float32(v.F))))
		}
	case ctypes.Double:
		return func(t *thread, addr int64, v value) { mm.Store8(addr, math.Float64bits(v.F)) }
	case ctypes.Ptr:
		return func(t *thread, addr int64, v value) { mm.Store8(addr, uint64(v.I)) }
	case ctypes.Struct:
		return func(t *thread, addr int64, v value) { t.storeTyped(addr, ty, v) } // rterrf
	}
	if !ty.HasStaticSize() {
		return func(t *thread, addr int64, v value) { t.storeTyped(addr, ty, v) }
	}
	switch ty.Size() {
	case 1:
		return func(t *thread, addr int64, v value) { mm.Store1(addr, uint64(v.I)) }
	case 2:
		return func(t *thread, addr int64, v value) { mm.Store2(addr, uint64(v.I)) }
	case 4:
		return func(t *thread, addr int64, v value) { mm.Store4(addr, uint64(v.I)) }
	case 8:
		return func(t *thread, addr int64, v value) { mm.Store8(addr, uint64(v.I)) }
	}
	return func(t *thread, addr int64, v value) { t.storeTyped(addr, ty, v) }
}

// loadAcc compiles loadAccess for a fixed site and type: cache-model
// touch, profiling/redirection hooks, the null/bounds check, then the
// typed load. The hook branch disappears entirely when the machine's
// hook chain carries no per-access hooks (region-level layers like the
// observability adapter compile to the same closures as no hooks at
// all).
func (c *compiler) loadAcc(pos token.Pos, site int, ty *ctypes.Type) func(t *thread, addr int64) value {
	if acc, ok := c.hotLoadAcc(pos, site, ty); ok {
		return acc
	}
	ld := c.loaderFor(ty)
	size := accSize(ty)
	if !c.hooks.HasAccessHooks() {
		return func(t *thread, addr int64) value {
			t.touchCache(addr)
			t.checkAccess(pos, addr, size)
			return ld(t, addr)
		}
	}
	h := c.hooks
	return func(t *thread, addr int64) value {
		t.touchCache(addr)
		if h.Redirect != nil {
			var cost int64
			addr, cost = h.Redirect(site, addr, size, t.tid)
			t.counters[CatWork] += cost
		}
		t.checkAccess(pos, addr, size)
		if h.Load != nil && t.isMain {
			h.Load(site, addr, size)
		}
		if h.Observe != nil && t.observeOK(h, addr, size) {
			h.Observe(Access{Site: site, Addr: addr, Size: size, Tid: t.tid,
				Iter: t.curIter, Ordered: t.inOrdered})
		}
		return ld(t, addr)
	}
}

// storeAcc compiles storeAccess for a fixed site and type.
func (c *compiler) storeAcc(pos token.Pos, site int, ty *ctypes.Type) func(t *thread, addr int64, v value) {
	if acc, ok := c.hotStoreAcc(pos, site, ty); ok {
		return acc
	}
	st := c.storerFor(ty)
	size := accSize(ty)
	if !c.hooks.HasAccessHooks() {
		return func(t *thread, addr int64, v value) {
			t.touchCache(addr)
			t.checkAccess(pos, addr, size)
			st(t, addr, v)
		}
	}
	h := c.hooks
	return func(t *thread, addr int64, v value) {
		t.touchCache(addr)
		if h.Redirect != nil {
			var cost int64
			addr, cost = h.Redirect(site, addr, size, t.tid)
			t.counters[CatWork] += cost
		}
		t.checkAccess(pos, addr, size)
		if h.Store != nil && t.isMain {
			h.Store(site, addr, size)
		}
		if h.Observe != nil && t.observeOK(h, addr, size) {
			h.Observe(Access{Site: site, Addr: addr, Size: size, Tid: t.tid,
				Iter: t.curIter, Store: true, Ordered: t.inOrdered})
		}
		st(t, addr, v)
	}
}

// accSize is the byte size the hooks observe for an access of type ty.
func accSize(ty *ctypes.Type) int64 {
	if ty == nil || !ty.HasStaticSize() {
		return 0
	}
	return ty.Size()
}

// symAddrC compiles symAddr for a fixed symbol.
func (c *compiler) symAddrC(sym *ast.Symbol, pos token.Pos) caddr {
	switch sym.Kind {
	case ast.SymGlobal:
		idx := sym.Index
		return func(t *thread, f *frame) int64 { return t.m.globalAddr[idx] }
	case ast.SymLocal, ast.SymParam:
		idx := sym.Index
		name := sym.Name
		return func(t *thread, f *frame) int64 {
			a := f.slots[idx]
			if a == 0 {
				rterrf(pos, "variable %s used before its declaration executed", name)
			}
			return a
		}
	}
	name := sym.Name
	return func(t *thread, f *frame) int64 {
		rterrf(pos, "%s has no address", name)
		return 0
	}
}

// ---------------------------------------------------------------------
// Compile-time constant folding
// ---------------------------------------------------------------------

// constEval evaluates e at compile time when the subtree is
// side-effect free, deterministic and cannot raise a runtime error.
// n is the number of work-counter ticks the tree-walker would record
// evaluating the subtree, so the folded closure stays counter-exact.
func (c *compiler) constEval(e ast.Expr) (v value, n int64, ok bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return iv(x.Value), 1, true
	case *ast.FloatLit:
		return fv(x.Value), 1, true
	case *ast.SizeofType:
		if !x.Of.HasStaticSize() {
			return value{}, 0, false
		}
		return iv(x.Of.Size()), 1, true
	case *ast.SizeofExpr:
		t := x.X.ExprType()
		if t == nil || !t.HasStaticSize() {
			return value{}, 0, false
		}
		return iv(t.Size()), 1, true
	case *ast.Cast:
		xv, xn, xok := c.constEval(x.X)
		if !xok || x.To == nil || !x.To.HasStaticSize() {
			return value{}, 0, false
		}
		return convert(xv, x.X.ExprType(), x.To), xn + 1, true
	case *ast.Unary:
		return c.constUnary(x)
	case *ast.Binary:
		return c.constBinary(x)
	case *ast.Logical:
		return c.constLogical(x)
	case *ast.Cond:
		return c.constCond(x)
	}
	return value{}, 0, false
}

// constLogical folds && / || with short-circuit-exact tick counts: the
// tree-walker never evaluates (or ticks) the right operand once the
// left decides, so a decided left folds the whole expression even when
// the right is not constant.
func (c *compiler) constLogical(x *ast.Logical) (value, int64, bool) {
	xv, xn, ok := c.constEval(x.X)
	if !ok {
		return value{}, 0, false
	}
	tx := truth(xv, x.X.ExprType())
	if x.Op == token.LAND && !tx {
		return iv(0), xn + 1, true
	}
	if x.Op == token.LOR && tx {
		return iv(1), xn + 1, true
	}
	yv, yn, ok := c.constEval(x.Y)
	if !ok {
		return value{}, 0, false
	}
	if truth(yv, x.Y.ExprType()) {
		return iv(1), xn + yn + 1, true
	}
	return iv(0), xn + yn + 1, true
}

// constCond folds ?: when the condition and the taken branch are
// constant. The untaken branch never runs, so it needs no folding —
// only the taken branch's ticks count.
func (c *compiler) constCond(x *ast.Cond) (value, int64, bool) {
	cv, cn, ok := c.constEval(x.C)
	if !ok || x.ExprType() == nil {
		return value{}, 0, false
	}
	taken := x.Then
	if !truth(cv, x.C.ExprType()) {
		taken = x.Else
	}
	tv, tn, ok := c.constEval(taken)
	if !ok {
		return value{}, 0, false
	}
	return convert(tv, taken.ExprType(), x.ExprType()), cn + tn + 1, true
}

func (c *compiler) constUnary(x *ast.Unary) (value, int64, bool) {
	xt, rt := x.X.ExprType(), x.ExprType()
	if xt == nil || rt == nil || !rt.HasStaticSize() {
		return value{}, 0, false
	}
	xv, xn, ok := c.constEval(x.X)
	if !ok {
		return value{}, 0, false
	}
	switch x.Op {
	case token.SUB:
		if rt.IsFloat() {
			return fv(-toFloat(xv, xt)), xn + 1, true
		}
		return truncInt(-xv.I, rt), xn + 1, true
	case token.ADD:
		return convert(xv, xt, rt), xn + 1, true
	case token.NOT:
		return truncInt(^xv.I, rt), xn + 1, true
	case token.LNOT:
		if truth(xv, xt) {
			return iv(0), xn + 1, true
		}
		return iv(1), xn + 1, true
	}
	return value{}, 0, false
}

func (c *compiler) constBinary(x *ast.Binary) (value, int64, bool) {
	xt, yt, rt := x.X.ExprType(), x.Y.ExprType(), x.ExprType()
	if xt == nil || yt == nil || rt == nil || !rt.HasStaticSize() {
		return value{}, 0, false
	}
	if xt.Kind == ctypes.Ptr || xt.Kind == ctypes.Array ||
		yt.Kind == ctypes.Ptr || yt.Kind == ctypes.Array {
		return value{}, 0, false
	}
	xv, xn, ok := c.constEval(x.X)
	if !ok {
		return value{}, 0, false
	}
	yv, yn, ok := c.constEval(x.Y)
	if !ok {
		return value{}, 0, false
	}
	n := xn + yn + 1
	common := ctypes.Common(xt, yt)
	a := convert(xv, xt, common)
	b := convert(yv, yt, common)

	if common.IsFloat() {
		switch x.Op {
		case token.ADD:
			return fv(a.F + b.F), n, true
		case token.SUB:
			return fv(a.F - b.F), n, true
		case token.MUL:
			return fv(a.F * b.F), n, true
		case token.QUO:
			return fv(a.F / b.F), n, true
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			return cmpFloat(x.Op, a.F, b.F), n, true
		}
		return value{}, 0, false
	}

	switch x.Op {
	case token.ADD:
		return truncInt(a.I+b.I, rt), n, true
	case token.SUB:
		return truncInt(a.I-b.I, rt), n, true
	case token.MUL:
		return truncInt(a.I*b.I, rt), n, true
	case token.QUO, token.REM:
		if b.I == 0 {
			return value{}, 0, false // must raise at run time
		}
		var r int64
		if common.Unsigned {
			if x.Op == token.QUO {
				r = int64(uint64(a.I) / uint64(b.I))
			} else {
				r = int64(uint64(a.I) % uint64(b.I))
			}
		} else {
			if x.Op == token.QUO {
				r = a.I / b.I
			} else {
				r = a.I % b.I
			}
		}
		return truncInt(r, rt), n, true
	case token.SHL:
		return truncInt(a.I<<uint(b.I&63), rt), n, true
	case token.SHR:
		if xt.Unsigned {
			if promSize(xt) == 4 {
				return truncInt(int64(uint32(a.I)>>uint(b.I&63)), rt), n, true
			}
			return truncInt(int64(uint64(a.I)>>uint(b.I&63)), rt), n, true
		}
		return truncInt(a.I>>uint(b.I&63), rt), n, true
	case token.AND:
		return truncInt(a.I&b.I, rt), n, true
	case token.OR:
		return truncInt(a.I|b.I, rt), n, true
	case token.XOR:
		return truncInt(a.I^b.I, rt), n, true
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		return cmpInt(x.Op, a.I, b.I, common.Unsigned), n, true
	}
	return value{}, 0, false
}
