package interp

import (
	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/token"
)

// tickStmt wraps a compiled statement body with the per-statement work
// tick and, when the machine has an op budget, the budget check —
// exactly what exec() does before dispatching. A machine running under
// a cancellable context (Options.Ctx) additionally polls the stop flag
// at every statement; the check is compiled in only for such machines,
// so batch runs keep the tick branch-free.
func (c *compiler) tickStmt(pos token.Pos, body cstmt) cstmt {
	if c.cancellable {
		max := c.maxOp
		return func(t *thread, f *frame) ctrl {
			t.counters[CatWork]++
			if max > 0 && t.counters[CatWork] > max {
				rterrf(pos, "operation budget exceeded (%d ops)", max)
			}
			if t.m.stop.Load() {
				t.raiseCancelled()
			}
			return body(t, f)
		}
	}
	if max := c.maxOp; max > 0 {
		return func(t *thread, f *frame) ctrl {
			t.counters[CatWork]++
			if t.counters[CatWork] > max {
				rterrf(pos, "operation budget exceeded (%d ops)", max)
			}
			return body(t, f)
		}
	}
	return func(t *thread, f *frame) ctrl {
		t.counters[CatWork]++
		return body(t, f)
	}
}

// fallbackStmt delegates a statement to the tree-walker (which ticks
// and checks the budget itself).
func (c *compiler) fallbackStmt(s ast.Stmt) cstmt {
	return func(t *thread, f *frame) ctrl { return t.exec(f, s) }
}

// compileStmt compiles s to a closure mirroring exec(f, s).
func (c *compiler) compileStmt(s ast.Stmt) cstmt {
	pos := s.Pos()
	switch x := s.(type) {
	case *ast.Block:
		return c.tickStmt(pos, c.compileBlock(x))

	case *ast.DeclStmt:
		if len(x.Decls) == 1 {
			cd := c.compileDecl(x.Decls[0])
			return c.tickStmt(pos, func(t *thread, f *frame) ctrl {
				cd(t, f)
				return ctrlNext
			})
		}
		decls := make([]func(t *thread, f *frame), len(x.Decls))
		for i, d := range x.Decls {
			decls[i] = c.compileDecl(d)
		}
		return c.tickStmt(pos, func(t *thread, f *frame) ctrl {
			for _, cd := range decls {
				cd(t, f)
			}
			return ctrlNext
		})

	case *ast.ExprStmt:
		ce := c.compileExpr(x.X)
		return c.tickStmt(pos, func(t *thread, f *frame) ctrl {
			ce(t, f)
			return ctrlNext
		})

	case *ast.If:
		cond := c.compileExpr(x.Cond)
		tr := truthC(x.Cond.ExprType())
		then := c.compileStmt(x.Then)
		if x.Else == nil {
			return c.tickStmt(pos, func(t *thread, f *frame) ctrl {
				if tr(cond(t, f)) {
					return then(t, f)
				}
				return ctrlNext
			})
		}
		els := c.compileStmt(x.Else)
		return c.tickStmt(pos, func(t *thread, f *frame) ctrl {
			if tr(cond(t, f)) {
				return then(t, f)
			}
			return els(t, f)
		})

	case *ast.While:
		return c.tickStmt(pos, c.compileWhile(x))

	case *ast.DoWhile:
		return c.tickStmt(pos, c.compileDoWhile(x))

	case *ast.For:
		return c.tickStmt(pos, c.compileFor(x))

	case *ast.Return:
		if x.X == nil {
			return c.tickStmt(pos, func(t *thread, f *frame) ctrl {
				t.retVal = value{}
				return ctrlReturn
			})
		}
		cx := c.compileExpr(x.X)
		cv := convC(x.X.ExprType(), c.curFn.Ret)
		return c.tickStmt(pos, func(t *thread, f *frame) ctrl {
			t.retVal = cv(cx(t, f))
			return ctrlReturn
		})

	case *ast.Break:
		return c.tickStmt(pos, func(t *thread, f *frame) ctrl { return ctrlBreak })

	case *ast.Continue:
		return c.tickStmt(pos, func(t *thread, f *frame) ctrl { return ctrlContinue })

	case *ast.SyncWait:
		return c.tickStmt(pos, func(t *thread, f *frame) ctrl {
			t.syncWait(pos)
			return ctrlNext
		})

	case *ast.SyncPost:
		return c.tickStmt(pos, func(t *thread, f *frame) ctrl {
			t.syncPost()
			return ctrlNext
		})
	}
	return c.fallbackStmt(s) // "cannot execute statement"
}

// compileBlock compiles a block body with execBlock's stack discipline
// (no tick: function bodies run through here directly).
func (c *compiler) compileBlock(b *ast.Block) cstmt {
	stmts := make([]cstmt, len(b.Stmts))
	for i, s := range b.Stmts {
		stmts[i] = c.compileStmt(s)
	}
	if len(stmts) == 1 {
		s0 := stmts[0]
		return func(t *thread, f *frame) ctrl {
			mark := t.sp
			cc := s0(t, f)
			t.sp = mark
			if cc == ctrlNext {
				return ctrlNext
			}
			return cc
		}
	}
	return func(t *thread, f *frame) ctrl {
		mark := t.sp
		for _, cs := range stmts {
			if cc := cs(t, f); cc != ctrlNext {
				t.sp = mark
				return cc
			}
		}
		t.sp = mark
		return ctrlNext
	}
}

// compileDecl compiles one local variable declaration, mirroring
// execDecl: size (VLA lengths evaluated at run time), alloca, slot
// definition, profiler definition report, then the initializer without
// access hooks.
func (c *compiler) compileDecl(d *ast.VarDecl) func(t *thread, f *frame) {
	pos := d.Pos()
	ty := d.Type
	idx := d.Sym.Index
	h := c.hooks
	defSite := d.Acc.Store

	if c.isPromoted(d.Sym) {
		// Promoted scalars keep the alloca and the definition report but
		// land their initial value in the register as well; with no
		// initializer the register starts zero, matching the zeroed slot.
		sz := ty.Size()
		var ci cexpr
		var cv cconv
		if d.Init != nil {
			ci = c.compileExpr(d.Init)
			cv = convC(d.Init.ExprType(), ty)
		}
		st := c.storerFor(ty)
		return func(t *thread, f *frame) {
			a := t.alloca(sz, pos)
			f.slots[idx] = a
			if h != nil {
				if h.Store != nil && t.isMain {
					h.Store(defSite, a, sz)
				}
				if h.Observe != nil && t.observeOK(h, a, sz) {
					h.Observe(Access{Site: defSite, Addr: a, Size: sz, Tid: t.tid,
						Iter: t.curIter, Store: true, Def: true, Ordered: t.inOrdered})
				}
			}
			if ci == nil {
				f.regs[idx] = value{}
				return
			}
			nv := cv(ci(t, f))
			f.regs[idx] = nv
			st(t, a, nv)
		}
	}

	var sizeOf func(t *thread, f *frame) int64
	switch {
	case d.VLALen != nil:
		cl := c.compileExpr(d.VLALen)
		name := d.Name
		elemTy := ty.Elem
		if elemTy.HasStaticSize() {
			esz := elemTy.Size()
			sizeOf = func(t *thread, f *frame) int64 {
				n := cl(t, f).I
				if n < 0 {
					rterrf(pos, "negative array length %d for %s", n, name)
				}
				size := n * esz
				if size == 0 {
					size = 1
				}
				return size
			}
		} else {
			sizeOf = func(t *thread, f *frame) int64 {
				n := cl(t, f).I
				if n < 0 {
					rterrf(pos, "negative array length %d for %s", n, name)
				}
				size := n * elemTy.Size()
				if size == 0 {
					size = 1
				}
				return size
			}
		}
	case ty.HasStaticSize():
		sz := ty.Size()
		sizeOf = func(t *thread, f *frame) int64 { return sz }
	default:
		sizeOf = func(t *thread, f *frame) int64 { return ty.Size() } // faults like the tree
	}

	var init func(t *thread, f *frame, a int64)
	if d.Init != nil {
		ci := c.compileExpr(d.Init)
		if ty.Kind == ctypes.Struct {
			sz := ty.Size()
			mm := c.mem
			init = func(t *thread, f *frame, a int64) {
				src := ci(t, f).I
				mm.Memcpy(a, src, sz)
			}
		} else {
			cv := convC(d.Init.ExprType(), ty)
			st := c.storerFor(ty)
			init = func(t *thread, f *frame, a int64) {
				st(t, a, cv(ci(t, f)))
			}
		}
	}

	return func(t *thread, f *frame) {
		size := sizeOf(t, f)
		a := t.alloca(size, pos)
		f.slots[idx] = a
		if h != nil {
			if h.Store != nil && t.isMain {
				h.Store(defSite, a, size)
			}
			if h.Observe != nil && t.observeOK(h, a, size) {
				h.Observe(Access{Site: defSite, Addr: a, Size: size, Tid: t.tid,
					Iter: t.curIter, Store: true, Def: true, Ordered: t.inOrdered})
			}
		}
		if init != nil {
			init(t, f, a)
		}
	}
}

func (c *compiler) compileWhile(x *ast.While) cstmt {
	test := c.compileCondTest(x.Cond)
	body := c.compileStmt(x.Body)
	id := x.ID
	h := c.hooks
	if h == nil {
		return func(t *thread, f *frame) ctrl {
			for {
				// Loop back-edges are cancellation safe points, so a
				// cancelled region (sibling fault, watchdog timeout) can
				// interrupt a worker stuck in a MiniC-level loop.
				if t.cancel != nil && t.cancel.Load() {
					panic(regionCanceled{})
				}
				if !test(t, f) {
					break
				}
				cc := body(t, f)
				if cc == ctrlBreak {
					break
				}
				if cc == ctrlReturn {
					return cc
				}
			}
			return ctrlNext
		}
	}
	return func(t *thread, f *frame) ctrl {
		if t.isMain && h.LoopEnter != nil {
			h.LoopEnter(id)
		}
		var iter int64
		for {
			if t.cancel != nil && t.cancel.Load() {
				panic(regionCanceled{}) // cancelled region safe point
			}
			if t.isMain && h.LoopIter != nil {
				h.LoopIter(id, iter)
			}
			iter++
			if !test(t, f) {
				break
			}
			cc := body(t, f)
			if cc == ctrlBreak {
				break
			}
			if cc == ctrlReturn {
				return cc
			}
		}
		if t.isMain && h.LoopExit != nil {
			h.LoopExit(id)
		}
		return ctrlNext
	}
}

func (c *compiler) compileDoWhile(x *ast.DoWhile) cstmt {
	test := c.compileCondTest(x.Cond)
	body := c.compileStmt(x.Body)
	id := x.ID
	h := c.hooks
	if h == nil {
		return func(t *thread, f *frame) ctrl {
			for {
				if t.cancel != nil && t.cancel.Load() {
					panic(regionCanceled{}) // cancelled region safe point
				}
				cc := body(t, f)
				if cc == ctrlBreak {
					break
				}
				if cc == ctrlReturn {
					return cc
				}
				if !test(t, f) {
					break
				}
			}
			return ctrlNext
		}
	}
	return func(t *thread, f *frame) ctrl {
		if t.isMain && h.LoopEnter != nil {
			h.LoopEnter(id)
		}
		var iter int64
		for {
			if t.cancel != nil && t.cancel.Load() {
				panic(regionCanceled{}) // cancelled region safe point
			}
			if t.isMain && h.LoopIter != nil {
				h.LoopIter(id, iter)
			}
			iter++
			cc := body(t, f)
			if cc == ctrlBreak {
				break
			}
			if cc == ctrlReturn {
				return cc
			}
			if !test(t, f) {
				break
			}
		}
		if t.isMain && h.LoopExit != nil {
			h.LoopExit(id)
		}
		return ctrlNext
	}
}

// compileFor compiles a for loop, dispatching between sequential,
// traced and parallel execution exactly like exec's *ast.For case. The
// machine options that pick the mode are fixed at compile time; only
// "am I already inside a parallel region" stays a runtime test.
func (c *compiler) compileFor(x *ast.For) cstmt {
	seq := c.compileSeqFor(x)
	if x.Par == ast.Sequential {
		return seq
	}

	var traced cstmt
	if c.m.opts.TraceParallel {
		traced = c.compileTracedFor(x)
	}
	useParallel := (c.m.opts.NumThreads > 1 || c.m.opts.ParallelizeSingle) &&
		!c.m.opts.ForceSequential
	if traced == nil && !useParallel {
		return seq
	}

	var initB bodyFn
	if x.Init != nil {
		initB = bodyFn(c.compileStmt(x.Init))
	}
	bodyB := bodyFn(c.compileStmt(x.Body))

	return func(t *thread, f *frame) ctrl {
		if !t.parallel && t.ts == nil {
			if traced != nil {
				return traced(t, f)
			}
			return t.runParallelFor(f, x, initB, bodyB, bodyFn(seq))
		}
		return seq(t, f)
	}
}

// compileSeqFor mirrors execSeqFor.
func (c *compiler) compileSeqFor(x *ast.For) cstmt {
	var init cstmt
	if x.Init != nil {
		init = c.compileStmt(x.Init)
	}
	var test func(t *thread, f *frame) bool
	if x.Cond != nil {
		test = c.compileCondTest(x.Cond)
	}
	var post cexpr
	if x.Post != nil {
		post = c.compileExpr(x.Post)
	}
	body := c.compileStmt(x.Body)
	id := x.ID
	h := c.hooks

	return func(t *thread, f *frame) ctrl {
		mark := t.sp
		defer func() { t.sp = mark }()
		if init != nil {
			if cc := init(t, f); cc != ctrlNext {
				return cc
			}
		}
		if h != nil && t.isMain && h.LoopEnter != nil {
			h.LoopEnter(id)
		}
		var iter int64
		for {
			if t.cancel != nil && t.cancel.Load() {
				panic(regionCanceled{}) // cancelled region safe point
			}
			if h != nil && t.isMain && h.LoopIter != nil {
				h.LoopIter(id, iter)
			}
			if test != nil && !test(t, f) {
				break
			}
			iter++
			cc := body(t, f)
			if cc == ctrlBreak {
				break
			}
			if cc == ctrlReturn {
				return cc
			}
			if post != nil {
				post(t, f)
			}
		}
		if h != nil && t.isMain && h.LoopExit != nil {
			h.LoopExit(id)
		}
		return ctrlNext
	}
}

// compileTracedFor mirrors execTracedFor: sequential execution of a
// parallel loop while recording the per-iteration cost trace.
func (c *compiler) compileTracedFor(x *ast.For) cstmt {
	var init cstmt
	if x.Init != nil {
		init = c.compileStmt(x.Init)
	}
	var cond cexpr
	var trc func(value) bool
	if x.Cond != nil {
		cond = c.compileExpr(x.Cond)
		trc = truthC(x.Cond.ExprType())
	}
	var post cexpr
	if x.Post != nil {
		post = c.compileExpr(x.Post)
	}
	body := c.compileStmt(x.Body)
	id := x.ID
	kind := x.Par
	nt := c.m.opts.NumThreads
	h := c.hooks

	return func(t *thread, f *frame) ctrl {
		tr := &LoopTrace{LoopID: id, Kind: kind}
		t.ts = &traceState{trace: tr}
		if h != nil && h.ParallelStart != nil {
			h.ParallelStart(id, nt)
		}
		defer func() {
			t.ts = nil
			t.m.traces = append(t.m.traces, tr)
			if h != nil && h.ParallelEnd != nil {
				h.ParallelEnd(id)
			}
		}()

		mark := t.sp
		defer func() { t.sp = mark }()
		if init != nil {
			if cc := init(t, f); cc != ctrlNext {
				return cc
			}
		}
		var iter int64
		for {
			if cond != nil && !trc(cond(t, f)) {
				break
			}
			t.curIter = iter
			t.posted = false
			iter++
			t.ts.beginIter(t)
			cc := body(t, f)
			t.ts.endIter(t)
			if cc == ctrlBreak {
				break
			}
			if cc == ctrlReturn {
				return cc
			}
			if post != nil {
				post(t, f)
			}
		}
		return ctrlNext
	}
}
