package alias

import (
	"testing"

	"gdsx/internal/ast"
	"gdsx/internal/parser"
	"gdsx/internal/sema"
)

func analyze(t *testing.T, src string) (*ast.Program, *sema.Info, *Analysis) {
	t.Helper()
	prog, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return prog, info, Analyze(prog, info)
}

// symByName finds a variable symbol anywhere in the program.
func symByName(prog *ast.Program, name string) *ast.Symbol {
	var sym *ast.Symbol
	ast.Inspect(prog, func(n ast.Node) bool {
		if d, ok := n.(*ast.VarDecl); ok && d.Name == name && d.Sym != nil {
			sym = d.Sym
		}
		return true
	})
	return sym
}

func hasHeap(objs []Object, site int) bool {
	for _, o := range objs {
		if o.Kind == ObjHeap && (site == 0 || o.Site == site) {
			return true
		}
	}
	return false
}

func hasVar(objs []Object, name string) bool {
	for _, o := range objs {
		if o.Kind == ObjVar && o.Sym.Name == name {
			return true
		}
	}
	return false
}

func TestMallocFlow(t *testing.T) {
	prog, _, a := analyze(t, `
int main() {
    int *p = (int*)malloc(8);
    int *q = p;
    int *r;
    r = q;
    free(r);
    return 0;
}`)
	for _, name := range []string{"p", "q", "r"} {
		objs := a.PointsToSym(symByName(prog, name))
		if !hasHeap(objs, 1) {
			t.Errorf("%s should point to heap#1, got %v", name, objs)
		}
	}
}

func TestAddressOf(t *testing.T) {
	prog, _, a := analyze(t, `
int main() {
    int x;
    int y;
    int *p = &x;
    int *q;
    if (x) q = &y;
    else q = p;
    *q = 1;
    return 0;
}`)
	p := a.PointsToSym(symByName(prog, "p"))
	if !hasVar(p, "x") || hasVar(p, "y") {
		t.Errorf("p -> %v, want exactly x", p)
	}
	q := a.PointsToSym(symByName(prog, "q"))
	if !hasVar(q, "x") || !hasVar(q, "y") {
		t.Errorf("q -> %v, want x and y", q)
	}
}

func TestHeapIndirection(t *testing.T) {
	// Pointers stored into heap cells and read back.
	prog, _, a := analyze(t, `
struct node { int v; struct node *next; };
int main() {
    struct node *a = (struct node*)malloc(sizeof(struct node));
    struct node *b = (struct node*)malloc(sizeof(struct node));
    a->next = b;
    struct node *c = a->next;
    c->v = 1;
    return 0;
}`)
	c := a.PointsToSym(symByName(prog, "c"))
	if !hasHeap(c, 2) {
		t.Errorf("c -> %v, want heap#2", c)
	}
	if hasHeap(c, 1) {
		// Field-insensitivity may or may not include heap#1; it must
		// at least include heap#2 (checked above). Nothing to assert.
		_ = c
	}
}

func TestInterprocedural(t *testing.T) {
	prog, _, a := analyze(t, `
int *identity(int *p) { return p; }
int main() {
    int x;
    int *q = identity(&x);
    *q = 1;
    return 0;
}`)
	q := a.PointsToSym(symByName(prog, "q"))
	if !hasVar(q, "x") {
		t.Errorf("q -> %v, want x through call", q)
	}
}

func TestPointerArithmeticPreserves(t *testing.T) {
	prog, _, a := analyze(t, `
int main() {
    int *base = (int*)malloc(40);
    int *p = base + 3;
    short *s = (short*)(base + 1);
    p[0] = 1;
    s[0] = 2;
    free(base);
    return 0;
}`)
	for _, name := range []string{"p", "s"} {
		if !hasHeap(a.PointsToSym(symByName(prog, name)), 1) {
			t.Errorf("%s lost heap target through arithmetic/cast", name)
		}
	}
}

func TestAmbiguousMalloc(t *testing.T) {
	// The hmmer mx pattern (paper Figure 3): two allocation sites reach
	// the same pointer.
	prog, _, a := analyze(t, `
int main(int c) {
    int *mx;
    if (c) mx = (int*)malloc(100);
    else mx = (int*)malloc(200);
    mx[0] = 1;
    free(mx);
    return 0;
}`)
	mx := a.PointsToSym(symByName(prog, "mx"))
	if !hasHeap(mx, 1) || !hasHeap(mx, 2) {
		t.Errorf("mx -> %v, want heap#1 and heap#2", mx)
	}
}

func TestGlobalPointer(t *testing.T) {
	prog, _, a := analyze(t, `
int *gp;
int garr[10];
int main() {
    gp = garr;
    gp[0] = 1;
    return 0;
}`)
	if !hasVar(a.PointsToSym(symByName(prog, "gp")), "garr") {
		t.Errorf("gp does not point to garr")
	}
}

func TestPointerSyms(t *testing.T) {
	prog, _, a := analyze(t, `
int main() {
    int *p = (int*)malloc(8);
    int *q = p;
    int *unrelated = (int*)malloc(8);
    *q = 1;
    *unrelated = 2;
    free(p);
    free(unrelated);
    return 0;
}`)
	objs := map[Object]bool{{Kind: ObjHeap, Site: 1}: true}
	syms := a.PointerSyms(objs)
	names := map[string]bool{}
	for _, s := range syms {
		names[s.Name] = true
	}
	if !names["p"] || !names["q"] || names["unrelated"] {
		t.Errorf("PointerSyms = %v", names)
	}
	_ = prog
}

func TestAddrOfElement(t *testing.T) {
	prog, _, a := analyze(t, `
int main() {
    int *buf = (int*)malloc(40);
    int *p = &buf[3];
    *p = 5;
    free(buf);
    return 0;
}`)
	if !hasHeap(a.PointsToSym(symByName(prog, "p")), 1) {
		t.Errorf("&buf[3] lost the heap object")
	}
}

func TestMayPoint(t *testing.T) {
	prog, _, a := analyze(t, `
int g;
int main() {
    int *p = &g;
    *p = 3;
    return 0;
}`)
	p := symByName(prog, "p")
	g := symByName(prog, "g")
	if !a.MayPoint(p, Object{Kind: ObjVar, Sym: g}) {
		t.Errorf("MayPoint(p, g) = false")
	}
	if a.MayPoint(p, Object{Kind: ObjHeap, Site: 9}) {
		t.Errorf("MayPoint(p, heap#9) = true")
	}
}

func TestPointsToRet(t *testing.T) {
	prog, _, a := analyze(t, `
int *mk(int c) {
    if (c) { return (int*)malloc(8); }
    return (int*)malloc(16);
}
int main() {
    int *p = mk(1);
    *p = 1;
    free(p);
    return 0;
}`)
	var fn *ast.FuncDecl
	for _, f := range prog.Funcs() {
		if f.Name == "mk" {
			fn = f
		}
	}
	objs := a.PointsToRet(fn)
	if !hasHeap(objs, 1) || !hasHeap(objs, 2) {
		t.Fatalf("mk() return -> %v, want both heap sites", objs)
	}
}

func TestMemcpyPropagatesPointers(t *testing.T) {
	// Pointers stored in one buffer and memcpy'd to another must be
	// visible through the destination.
	prog, _, a := analyze(t, `
int g;
int main() {
    int **src = (int**)malloc(16);
    int **dst = (int**)malloc(16);
    src[0] = &g;
    memcpy(dst, src, 16);
    int *q = dst[0];
    *q = 1;
    free(src);
    free(dst);
    return 0;
}`)
	q := a.PointsToSym(symByName(prog, "q"))
	if !hasVar(q, "g") {
		t.Fatalf("q -> %v, want g via memcpy", q)
	}
}

func TestStringObject(t *testing.T) {
	prog, _, a := analyze(t, `
int main() {
    char *s = "hi";
    return s[0];
}`)
	objs := a.PointsToSym(symByName(prog, "s"))
	if len(objs) != 1 || objs[0].Kind != ObjStr {
		t.Fatalf("s -> %v, want string object", objs)
	}
}
