// Package alias implements a flow-insensitive, field-insensitive,
// inclusion-based (Andersen-style) points-to analysis for MiniC. The
// expansion pass uses it for the paper's §3.4 memory-overhead
// reduction: a data structure is expanded only if it may be referenced
// by a thread-private access, and a pointer is promoted to a fat
// pointer only if it may point to an expanded structure.
package alias

import (
	"sort"

	"gdsx/internal/ast"
	"gdsx/internal/ctypes"
	"gdsx/internal/sema"
	"gdsx/internal/token"
)

// ObjKind discriminates abstract memory objects.
type ObjKind int

// Abstract object kinds.
const (
	ObjVar  ObjKind = iota // a named variable's storage
	ObjHeap                // all blocks allocated at one allocation site
	ObjStr                 // interned string storage
)

// Object is an abstract memory object.
type Object struct {
	Kind ObjKind
	Sym  *ast.Symbol // for ObjVar
	Site int         // for ObjHeap
}

func (o Object) String() string {
	switch o.Kind {
	case ObjVar:
		return "var " + o.Sym.Name
	case ObjHeap:
		return "heap#" + itoa(o.Site)
	default:
		return "str"
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// Analysis holds the solved points-to relation.
type Analysis struct {
	objOf   map[Object]int
	objects []Object
	nodes   []*node
	varNode map[*ast.Symbol]int
	objNode []int // object index -> node holding its contents
	exprN   map[ast.Expr]int
	retNode map[*ast.FuncDecl]int
}

type node struct {
	pts    map[int]bool // object indices
	copyTo map[int]bool // successor nodes: pts(this) ⊆ pts(succ)
	// complex constraints triggered when pts grows:
	loadTo    []int // *this flows to node t
	storeFrom []int // node s flows into *this
}

// Analyze runs the analysis over a checked program.
func Analyze(prog *ast.Program, info *sema.Info) *Analysis {
	a := &Analysis{
		objOf:   map[Object]int{},
		varNode: map[*ast.Symbol]int{},
		exprN:   map[ast.Expr]int{},
		retNode: map[*ast.FuncDecl]int{},
	}
	a.build(prog)
	a.solve()
	return a
}

func (a *Analysis) newNode() int {
	a.nodes = append(a.nodes, &node{pts: map[int]bool{}, copyTo: map[int]bool{}})
	return len(a.nodes) - 1
}

func (a *Analysis) object(o Object) int {
	if i, ok := a.objOf[o]; ok {
		return i
	}
	i := len(a.objects)
	a.objects = append(a.objects, o)
	a.objOf[o] = i
	a.objNode = append(a.objNode, -1)
	return i
}

// contents returns the node modeling the pointers stored inside obj.
// For variables this is the variable's own node (field-insensitive).
func (a *Analysis) contents(obj int) int {
	o := a.objects[obj]
	if o.Kind == ObjVar {
		return a.nodeOf(o.Sym)
	}
	if a.objNode[obj] < 0 {
		a.objNode[obj] = a.newNode()
	}
	return a.objNode[obj]
}

func (a *Analysis) nodeOf(sym *ast.Symbol) int {
	if n, ok := a.varNode[sym]; ok {
		return n
	}
	n := a.newNode()
	a.varNode[sym] = n
	return n
}

func (a *Analysis) addAddr(n, obj int) { a.nodes[n].pts[obj] = true }

// addCopy inserts the edge pts(src) ⊆ pts(dst) and reports whether it
// is new.
func (a *Analysis) addCopy(src, dst int) bool {
	if src == dst || a.nodes[src].copyTo[dst] {
		return false
	}
	a.nodes[src].copyTo[dst] = true
	return true
}
func (a *Analysis) addLoad(ptr, dst int) { a.nodes[ptr].loadTo = append(a.nodes[ptr].loadTo, dst) }
func (a *Analysis) addStore(ptr, src int) {
	a.nodes[ptr].storeFrom = append(a.nodes[ptr].storeFrom, src)
}

// ---------------------------------------------------------------------
// Constraint generation
// ---------------------------------------------------------------------

func (a *Analysis) build(prog *ast.Program) {
	for _, d := range prog.Decls {
		switch x := d.(type) {
		case *ast.VarDecl:
			if x.Init != nil {
				a.assignTo(a.nodeOf(x.Sym), x.Init)
			}
		case *ast.FuncDecl:
			a.retNode[x] = a.newNode()
		}
	}
	for _, d := range prog.Decls {
		if f, ok := d.(*ast.FuncDecl); ok {
			a.stmt(f, f.Body)
		}
	}
}

func (a *Analysis) stmt(fn *ast.FuncDecl, s ast.Stmt) {
	switch x := s.(type) {
	case *ast.Block:
		for _, st := range x.Stmts {
			a.stmt(fn, st)
		}
	case *ast.DeclStmt:
		for _, d := range x.Decls {
			if d.Init != nil {
				a.assignTo(a.nodeOf(d.Sym), d.Init)
			}
		}
	case *ast.ExprStmt:
		a.expr(fn, x.X)
	case *ast.If:
		a.expr(fn, x.Cond)
		a.stmt(fn, x.Then)
		if x.Else != nil {
			a.stmt(fn, x.Else)
		}
	case *ast.For:
		if x.Init != nil {
			a.stmt(fn, x.Init)
		}
		if x.Cond != nil {
			a.expr(fn, x.Cond)
		}
		if x.Post != nil {
			a.expr(fn, x.Post)
		}
		a.stmt(fn, x.Body)
	case *ast.While:
		a.expr(fn, x.Cond)
		a.stmt(fn, x.Body)
	case *ast.DoWhile:
		a.stmt(fn, x.Body)
		a.expr(fn, x.Cond)
	case *ast.Return:
		if x.X != nil {
			a.assignToNode(a.retNode[fn], a.expr(fn, x.X))
		}
	}
}

// expr returns the node holding the abstract pointer value of e,
// generating constraints for any side effects inside e.
func (a *Analysis) expr(fn *ast.FuncDecl, e ast.Expr) int {
	if n, ok := a.exprN[e]; ok {
		return n
	}
	n := a.exprUncached(fn, e)
	a.exprN[e] = n
	return n
}

func (a *Analysis) exprUncached(fn *ast.FuncDecl, e ast.Expr) int {
	switch x := e.(type) {
	case *ast.Ident:
		switch x.Sym.Kind {
		case ast.SymGlobal, ast.SymLocal, ast.SymParam:
			if x.Sym.Type.Kind == ctypes.Array {
				// An array rvalue is the address of the array object.
				n := a.newNode()
				a.addAddr(n, a.object(Object{Kind: ObjVar, Sym: x.Sym}))
				return n
			}
			return a.nodeOf(x.Sym)
		}
		return a.newNode()

	case *ast.IntLit, *ast.FloatLit, *ast.SizeofType, *ast.SizeofExpr:
		return a.newNode()

	case *ast.StringLit:
		n := a.newNode()
		a.addAddr(n, a.object(Object{Kind: ObjStr}))
		return n

	case *ast.Unary:
		switch x.Op {
		case token.AND:
			n := a.newNode()
			objs := a.lvalueObjects(fn, x.X)
			for _, obj := range objs {
				a.addAddr(n, obj)
			}
			if len(objs) == 0 {
				// &(*p), &p[i], &p->f: the address points wherever the
				// base pointer points (field-insensitively).
				if ptr, ok := a.derefBase(fn, x.X); ok {
					a.addCopy(ptr, n)
				}
			}
			return n
		case token.MUL:
			ptr := a.expr(fn, x.X)
			n := a.newNode()
			a.addLoad(ptr, n)
			return n
		default:
			a.expr(fn, x.X)
			return a.newNode()
		}

	case *ast.Binary:
		xn := a.expr(fn, x.X)
		yn := a.expr(fn, x.Y)
		// Pointer arithmetic: the result points where the pointer
		// operand points (field/element-insensitive).
		n := a.newNode()
		if t := x.X.ExprType(); t != nil && (t.Kind == ctypes.Ptr || t.Kind == ctypes.Array) {
			a.addCopy(xn, n)
		}
		if t := x.Y.ExprType(); t != nil && (t.Kind == ctypes.Ptr || t.Kind == ctypes.Array) {
			a.addCopy(yn, n)
		}
		return n

	case *ast.Logical:
		a.expr(fn, x.X)
		a.expr(fn, x.Y)
		return a.newNode()

	case *ast.Cond:
		a.expr(fn, x.C)
		tn := a.expr(fn, x.Then)
		en := a.expr(fn, x.Else)
		n := a.newNode()
		a.addCopy(tn, n)
		a.addCopy(en, n)
		return n

	case *ast.Assign:
		rhs := a.expr(fn, x.RHS)
		a.assignLvalue(fn, x.LHS, rhs)
		return rhs

	case *ast.IncDec:
		return a.expr(fn, x.X)

	case *ast.Index:
		base := a.expr(fn, x.X)
		a.expr(fn, x.I)
		if bt := x.X.ExprType(); bt != nil && bt.Kind == ctypes.Array {
			// Indexing an array lvalue: the elements live inside the
			// same object; field-insensitively its contents node is
			// the base node itself (for variables) — a load from the
			// address of the object.
			if x.ExprType() != nil && x.ExprType().Kind == ctypes.Array {
				return base
			}
			n := a.newNode()
			a.addLoad(base, n)
			return n
		}
		n := a.newNode()
		a.addLoad(base, n)
		return n

	case *ast.Member:
		if x.Arrow {
			ptr := a.expr(fn, x.X)
			n := a.newNode()
			a.addLoad(ptr, n)
			return n
		}
		// s.f: contents of the object of s (field-insensitive).
		n := a.newNode()
		for _, obj := range a.lvalueObjects(fn, x.X) {
			a.addCopy(a.contents(obj), n)
		}
		return n

	case *ast.Call:
		return a.call(fn, x)

	case *ast.Cast:
		return a.expr(fn, x.X)
	}
	return a.newNode()
}

// lvalueObjects returns the abstract objects an lvalue designates.
func (a *Analysis) lvalueObjects(fn *ast.FuncDecl, e ast.Expr) []int {
	switch x := e.(type) {
	case *ast.Ident:
		switch x.Sym.Kind {
		case ast.SymGlobal, ast.SymLocal, ast.SymParam:
			return []int{a.object(Object{Kind: ObjVar, Sym: x.Sym})}
		}
		return nil
	case *ast.Index:
		if bt := x.X.ExprType(); bt != nil && bt.Kind == ctypes.Array {
			return a.lvalueObjects(fn, x.X)
		}
		// p[i]: objects pointed to by p. Resolved after solving; here
		// we conservatively route through a load-node object set by
		// returning nothing and relying on assignLvalue's store
		// constraint instead.
		return nil
	case *ast.Member:
		if !x.Arrow {
			return a.lvalueObjects(fn, x.X)
		}
		return nil
	case *ast.Unary:
		if x.Op == token.MUL {
			return nil
		}
	}
	return nil
}

// derefBase returns the node of the pointer being dereferenced by a
// deref-shaped lvalue (*p, p[i], p->f), descending through dot-member
// and array-index layers.
func (a *Analysis) derefBase(fn *ast.FuncDecl, e ast.Expr) (int, bool) {
	switch x := e.(type) {
	case *ast.Unary:
		if x.Op == token.MUL {
			return a.expr(fn, x.X), true
		}
	case *ast.Index:
		if bt := x.X.ExprType(); bt != nil && bt.Kind == ctypes.Array {
			return a.derefBase(fn, x.X)
		}
		return a.expr(fn, x.X), true
	case *ast.Member:
		if x.Arrow {
			return a.expr(fn, x.X), true
		}
		return a.derefBase(fn, x.X)
	}
	return 0, false
}

// assignLvalue generates constraints for "lhs = value-of(rhsNode)".
func (a *Analysis) assignLvalue(fn *ast.FuncDecl, lhs ast.Expr, rhs int) {
	switch x := lhs.(type) {
	case *ast.Ident:
		switch x.Sym.Kind {
		case ast.SymGlobal, ast.SymLocal, ast.SymParam:
			a.addCopy(rhs, a.nodeOf(x.Sym))
		}
	case *ast.Index:
		if bt := x.X.ExprType(); bt != nil && bt.Kind == ctypes.Array {
			// a[i] = v with a an array object: store into the object's
			// contents node.
			for _, obj := range a.lvalueObjects(fn, x.X) {
				a.addCopy(rhs, a.contents(obj))
			}
			return
		}
		ptr := a.expr(fn, x.X)
		a.expr(fn, x.I)
		a.addStore(ptr, rhs)
	case *ast.Member:
		if x.Arrow {
			ptr := a.expr(fn, x.X)
			a.addStore(ptr, rhs)
			return
		}
		for _, obj := range a.lvalueObjects(fn, x.X) {
			a.addCopy(rhs, a.contents(obj))
		}
	case *ast.Unary:
		if x.Op == token.MUL {
			ptr := a.expr(fn, x.X)
			a.addStore(ptr, rhs)
		}
	}
}

// assignTo generates "node ⊇ value of e".
func (a *Analysis) assignTo(n int, e ast.Expr) {
	a.assignToNode(n, a.exprForInit(e))
}

func (a *Analysis) exprForInit(e ast.Expr) int {
	// Global initializers are constant; function context is nil-safe
	// because constants never reference locals.
	return a.expr(nil, e)
}

func (a *Analysis) assignToNode(dst, src int) { a.addCopy(src, dst) }

func (a *Analysis) call(fn *ast.FuncDecl, x *ast.Call) int {
	sym := x.Fun.Sym
	if sym.Kind == ast.SymBuiltin {
		var argNodes []int
		for _, arg := range x.Args {
			argNodes = append(argNodes, a.expr(fn, arg))
		}
		switch sym.Builtin {
		case ast.BMalloc, ast.BCalloc:
			n := a.newNode()
			a.addAddr(n, a.object(Object{Kind: ObjHeap, Site: x.AllocSite}))
			return n
		case ast.BRealloc:
			// realloc may return the old object or a new one at this
			// site; both are possible targets.
			n := a.newNode()
			a.addAddr(n, a.object(Object{Kind: ObjHeap, Site: x.AllocSite}))
			a.addCopy(argNodes[0], n)
			return n
		case ast.BMemcpy:
			// Pointer contents may be copied between the objects.
			tmp := a.newNode()
			a.addLoad(argNodes[1], tmp)
			a.addStore(argNodes[0], tmp)
			return a.newNode()
		}
		return a.newNode()
	}
	callee := sym.Fn
	for i, arg := range x.Args {
		an := a.expr(fn, arg)
		if i < len(callee.Params) {
			a.addCopy(an, a.nodeOf(callee.Params[i].Sym))
		}
	}
	return a.retNode[callee]
}

// ---------------------------------------------------------------------
// Solver
// ---------------------------------------------------------------------

func (a *Analysis) solve() {
	work := make([]int, 0, len(a.nodes))
	inWork := make([]bool, len(a.nodes))
	push := func(n int) {
		if n < len(inWork) && !inWork[n] {
			inWork[n] = true
			work = append(work, n)
		}
	}
	for i := range a.nodes {
		if len(a.nodes[i].pts) > 0 {
			push(i)
		}
	}
	// The graph can grow nodes during solving (contents nodes); track
	// dynamically.
	grow := func() {
		for len(inWork) < len(a.nodes) {
			inWork = append(inWork, false)
		}
	}
	propagate := func(src, dst int) bool {
		changed := false
		for o := range a.nodes[src].pts {
			if !a.nodes[dst].pts[o] {
				a.nodes[dst].pts[o] = true
				changed = true
			}
		}
		return changed
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[n] = false
		nd := a.nodes[n]
		// Resolve complex constraints against the current pts set.
		for o := range nd.pts {
			c := a.contents(o)
			grow()
			for _, dst := range nd.loadTo {
				// Record the edge for future growth of contents(o) and
				// propagate the current set across it now.
				a.addCopy(c, dst)
				if propagate(c, dst) {
					push(dst)
				}
			}
			for _, src := range nd.storeFrom {
				a.addCopy(src, c)
				if propagate(src, c) {
					push(c)
				}
			}
		}
		for dst := range nd.copyTo {
			if propagate(n, dst) {
				push(dst)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------

// PointsTo returns the abstract objects a pointer-valued expression may
// point to, in deterministic order. The expression must come from the
// analyzed program.
func (a *Analysis) PointsTo(e ast.Expr) []Object {
	n, ok := a.exprN[e]
	if !ok {
		return nil
	}
	return a.objectsOf(n)
}

// PointsToRet returns what a function's returned pointer may point to.
func (a *Analysis) PointsToRet(fn *ast.FuncDecl) []Object {
	n, ok := a.retNode[fn]
	if !ok {
		return nil
	}
	return a.objectsOf(n)
}

// PointsToSym returns what a pointer variable may point to.
func (a *Analysis) PointsToSym(sym *ast.Symbol) []Object {
	n, ok := a.varNode[sym]
	if !ok {
		return nil
	}
	return a.objectsOf(n)
}

func (a *Analysis) objectsOf(n int) []Object {
	var out []Object
	for o := range a.nodes[n].pts {
		out = append(out, a.objects[o])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		if out[i].Sym != nil && out[j].Sym != nil {
			return out[i].Sym.Name < out[j].Sym.Name
		}
		return false
	})
	return out
}

// MayPoint reports whether pointer symbol sym may point to obj.
func (a *Analysis) MayPoint(sym *ast.Symbol, obj Object) bool {
	n, ok := a.varNode[sym]
	if !ok {
		return false
	}
	i, ok := a.objOf[obj]
	if !ok {
		return false
	}
	return a.nodes[n].pts[i]
}

// PointerSyms returns every variable symbol whose points-to set
// intersects objs, in deterministic order. These are the pointers the
// expansion pass must promote to fat pointers.
func (a *Analysis) PointerSyms(objs map[Object]bool) []*ast.Symbol {
	idx := map[int]bool{}
	for o := range objs {
		if i, ok := a.objOf[o]; ok {
			idx[i] = true
		}
	}
	var out []*ast.Symbol
	for sym, n := range a.varNode {
		for o := range a.nodes[n].pts {
			if idx[o] {
				out = append(out, sym)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
