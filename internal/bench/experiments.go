package bench

import (
	"sort"

	"gdsx/internal/ddg"
	"gdsx/internal/workloads"
)

// Table4Row reproduces one row of the paper's Table 4: benchmark
// characteristics, with the loop-time share measured on our substrate
// next to the paper's number.
type Table4Row struct {
	Name, Suite, Func string
	LOC               int
	Level             int
	Parallelism       string
	TimePct           float64 // measured: loop ops / total ops
	PaperPct          float64
}

// Table4 regenerates the benchmark characteristics table.
func (h *Harness) Table4() ([]Table4Row, error) {
	var rows []Table4Row
	for _, w := range workloads.All() {
		d, err := h.Data(w)
		if err != nil {
			return nil, err
		}
		total := d.native.Counters[0]
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(loopOps(d.native)) / float64(total)
		}
		rows = append(rows, Table4Row{
			Name: w.Name, Suite: w.Suite, Func: w.Func, LOC: w.LOC(),
			Level: w.Level, Parallelism: w.Parallelism,
			TimePct: pct, PaperPct: w.PaperTimePct,
		})
	}
	return rows, nil
}

// Table5Row reproduces one row of Table 5: privatized structures.
type Table5Row struct {
	Name       string
	Privatized int
	Paper      int
}

// Table5 regenerates the privatized-structure counts.
func (h *Harness) Table5() ([]Table5Row, error) {
	var rows []Table5Row
	for _, w := range workloads.All() {
		d, err := h.Data(w)
		if err != nil {
			return nil, err
		}
		total := 0
		for _, rep := range d.optTR.Reports {
			total += rep.Structures
		}
		rows = append(rows, Table5Row{Name: w.Name, Privatized: total, Paper: w.PaperPrivatized})
	}
	return rows, nil
}

// Fig8Row is the dynamic memory-access breakdown of the candidate
// loops (paper Figure 8), in percent.
type Fig8Row struct {
	Name       string
	Free       float64 // free of loop-carried dependences
	Expandable float64 // thread-private per Definition 5
	Carried    float64 // residual loop-carried accesses
}

// Figure8 regenerates the access breakdown chart.
func (h *Harness) Figure8() ([]Fig8Row, error) {
	var rows []Fig8Row
	for _, w := range workloads.All() {
		d, err := h.Data(w)
		if err != nil {
			return nil, err
		}
		var agg ddg.Breakdown
		var loopIDs []int
		for id := range d.optTR.Profiles {
			loopIDs = append(loopIDs, id)
		}
		sort.Ints(loopIDs)
		for _, id := range loopIDs {
			b := ddg.BreakdownOf(d.optTR.Profiles[id].Graph, d.optTR.Classes[id])
			agg.Free += b.Free
			agg.Expandable += b.Expandable
			agg.Carried += b.Carried
			agg.Total += b.Total
		}
		t := float64(agg.Total)
		if t == 0 {
			t = 1
		}
		rows = append(rows, Fig8Row{
			Name:       w.Name,
			Free:       100 * float64(agg.Free) / t,
			Expandable: 100 * float64(agg.Expandable) / t,
			Carried:    100 * float64(agg.Carried) / t,
		})
	}
	return rows, nil
}

// Fig9Row is the single-core slowdown of the transformed program
// relative to native, without and with the §3.4 optimizations
// (paper Figures 9a and 9b).
type Fig9Row struct {
	Name  string
	Unopt float64
	Opt   float64
}

// Figure9 regenerates the expansion-overhead chart. The paper reports
// a 1.8x harmonic-mean slowdown unoptimized and below 5% optimized.
func (h *Harness) Figure9() ([]Fig9Row, float64, float64, error) {
	var rows []Fig9Row
	for _, w := range workloads.All() {
		d, err := h.Data(w)
		if err != nil {
			return nil, 0, 0, err
		}
		n := float64(d.native.Counters[0])
		rows = append(rows, Fig9Row{
			Name:  w.Name,
			Unopt: float64(d.unopt.Counters[0]) / n,
			Opt:   float64(d.opt.Counters[0]) / n,
		})
	}
	return rows, harmonic(rows, func(r Fig9Row) float64 { return r.Unopt }),
		harmonic(rows, func(r Fig9Row) float64 { return r.Opt }), nil
}

// Fig10Row compares single-core overheads of compile-time expansion and
// runtime privatization (paper Figure 10).
type Fig10Row struct {
	Name      string
	Expansion float64 // slowdown factor
	Runtime   float64
}

// Figure10 regenerates the expansion-vs-runtime-privatization chart.
func (h *Harness) Figure10() ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, w := range workloads.All() {
		d, err := h.Data(w)
		if err != nil {
			return nil, err
		}
		n := float64(d.native.Counters[0])
		rows = append(rows, Fig10Row{
			Name:      w.Name,
			Expansion: float64(d.opt.Counters[0]) / n,
			Runtime:   float64(d.rt.Counters[0]) / n,
		})
	}
	return rows, nil
}

// Fig11Row holds the simulated speedups of the expanded program over
// native sequential execution (paper Figures 11a and 11b).
type Fig11Row struct {
	Name  string
	Loop  map[int]float64 // loop speedup per thread count
	Total map[int]float64 // whole-program speedup per thread count
}

// Figure11 regenerates the speedup curves, plus the harmonic-mean total
// speedups per thread count (the paper reports 1.93 at 4 and 2.24 at 8).
func (h *Harness) Figure11() ([]Fig11Row, map[int]float64, error) {
	var rows []Fig11Row
	hm := map[int]float64{}
	for _, w := range workloads.All() {
		d, err := h.Data(w)
		if err != nil {
			return nil, nil, err
		}
		row := Fig11Row{Name: w.Name, Loop: map[int]float64{}, Total: map[int]float64{}}
		nativeLoop := float64(loopOps(d.native))
		nativeTotal := float64(d.native.Counters[0])
		for _, n := range h.cfg.Threads {
			lt, _ := h.loopTime(d.opt, n)
			tt, err := h.totalTime(d.opt, n)
			if err != nil {
				return nil, nil, err
			}
			row.Loop[n] = nativeLoop / float64(lt)
			row.Total[n] = nativeTotal / float64(tt)
		}
		rows = append(rows, row)
	}
	for _, n := range h.cfg.Threads {
		var inv float64
		for _, r := range rows {
			inv += 1 / r.Total[n]
		}
		hm[n] = float64(len(rows)) / inv
	}
	return rows, hm, nil
}

// Fig12Row is the loop-execution breakdown at the highest thread count
// (paper Figure 12): useful work, scheduling/synchronization, and
// waiting, as percentages of aggregate thread time.
type Fig12Row struct {
	Name    string
	Threads int
	Work    float64
	Sync    float64
	Wait    float64
}

// Figure12 regenerates the instruction-count breakdown chart.
func (h *Harness) Figure12() ([]Fig12Row, error) {
	n := h.cfg.Threads[len(h.cfg.Threads)-1]
	var rows []Fig12Row
	for _, w := range workloads.All() {
		d, err := h.Data(w)
		if err != nil {
			return nil, err
		}
		_, agg := h.loopTime(d.opt, n)
		tot := float64(agg.Busy + agg.Sync + agg.Wait)
		if tot == 0 {
			tot = 1
		}
		rows = append(rows, Fig12Row{
			Name: w.Name, Threads: n,
			Work: 100 * float64(agg.Busy) / tot,
			Sync: 100 * float64(agg.Sync) / tot,
			Wait: 100 * float64(agg.Wait) / tot,
		})
	}
	return rows, nil
}

// Fig13Row is the loop speedup achieved by runtime privatization
// instead of expansion (paper Figure 13: nearly none).
type Fig13Row struct {
	Name    string
	Speedup map[int]float64
}

// Figure13 regenerates the runtime-privatization speedup chart.
func (h *Harness) Figure13() ([]Fig13Row, error) {
	var rows []Fig13Row
	for _, w := range workloads.All() {
		d, err := h.Data(w)
		if err != nil {
			return nil, err
		}
		row := Fig13Row{Name: w.Name, Speedup: map[int]float64{}}
		nativeLoop := float64(loopOps(d.native))
		for _, n := range h.cfg.Threads {
			lt, _ := h.loopTime(d.rt, n)
			row.Speedup[n] = nativeLoop / float64(lt)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig14Row is the memory use of both methods as a multiple of the
// sequential program's (paper Figure 14).
type Fig14Row struct {
	Name      string
	Expansion map[int]float64
	Runtime   map[int]float64
}

// Figure14 regenerates the memory-overhead chart.
func (h *Harness) Figure14() ([]Fig14Row, error) {
	var rows []Fig14Row
	for _, w := range workloads.All() {
		d, err := h.Data(w)
		if err != nil {
			return nil, err
		}
		row := Fig14Row{Name: w.Name, Expansion: map[int]float64{}, Runtime: map[int]float64{}}
		base := float64(d.nativeMem)
		for _, n := range h.cfg.Threads {
			row.Expansion[n] = float64(d.expMem[n]) / base
			row.Runtime[n] = float64(d.rtMem[n]) / base
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func harmonic[T any](rows []T, f func(T) float64) float64 {
	var inv float64
	for _, r := range rows {
		inv += 1 / f(r)
	}
	return float64(len(rows)) / inv
}

// Threads returns the configured thread counts.
func (h *Harness) Threads() []int { return h.cfg.Threads }
