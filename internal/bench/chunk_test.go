package bench

import (
	"testing"

	"gdsx/internal/workloads"
)

func TestAblationChunkSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	cfg := DefaultConfig()
	cfg.Scale = workloads.ProfileScale
	h := New(cfg)
	rows, err := h.AblationChunk()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 3 DOACROSS workloads x 4 chunk sizes
		t.Fatalf("rows = %d", len(rows))
	}
	// Chunk 1 must never lose to chunk 8 (the paper's choice).
	for i := 0; i < len(rows); i += 4 {
		if rows[i].Speedup8 < rows[i+3].Speedup8 {
			t.Errorf("%s: chunk 1 (%.2f) loses to chunk 8 (%.2f)",
				rows[i].Name, rows[i].Speedup8, rows[i+3].Speedup8)
		}
	}
	t.Logf("%s", RenderChunkAblation(rows))
}
