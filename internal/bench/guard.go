package bench

// Guard overhead: what the guarded-execution monitor costs on runs
// that never violate — the paper-side question being whether runtime
// dependence checking is cheap enough to leave on when the profiled
// inputs may not cover production behavior. Like the engine
// comparison, this measures host wall-clock time: the monitor adds no
// simulated operations (it observes through hooks), so its cost is
// invisible to the schedule simulator.

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"gdsx"
	"gdsx/internal/workloads"
)

// GuardRow is one workload's unguarded-vs-guarded measurement. Both
// runs execute the same guard-transformed program (markers included)
// in parallel; the guarded run additionally carries the access monitor
// and its end-of-region replay.
type GuardRow struct {
	Workload   string  `json:"workload"`
	BaseNS     int64   `json:"base_ns"`
	GuardedNS  int64   `json:"guarded_ns"`
	Overhead   float64 `json:"overhead"`
	Violations int     `json:"violations"`
}

// GuardReport is the full guard-overhead measurement, serialized to
// BENCH_guard.json by gdsxbench -guard.
type GuardReport struct {
	GoVersion string     `json:"go_version"`
	Scale     string     `json:"scale"`
	Threads   int        `json:"threads"`
	Reps      int        `json:"reps"`
	Rows      []GuardRow `json:"rows"`
	Geomean   float64    `json:"geomean_overhead"`
}

const guardReps = 5

// GuardQuickWorkloads is the subset the CI smoke gate measures
// (gdsxbench -guard -quick): the workload whose monitor overhead was
// historically worst (mpeg2-encoder: dense small-loop access traffic),
// plus a hash kernel and a block compressor for diversity. All three
// are DOALL-dominated: the DOACROSS workloads (dijkstra) spin-wait on
// cross-iteration posts, and on an oversubscribed CI host their
// unguarded baseline swings by an order of magnitude with goroutine
// scheduling luck, which no best-of repetition count tames.
var GuardQuickWorkloads = []string{"md5", "mpeg2-encoder", "256.bzip2"}

// GeomeanOver recomputes the report's geomean overhead over the named
// subset of its rows, so a quick measurement can be compared against
// the matching rows of a full checked-in report. Returns false if any
// name has no row.
func (r *GuardReport) GeomeanOver(names []string) (float64, bool) {
	logSum := 0.0
	for _, name := range names {
		found := false
		for _, row := range r.Rows {
			if row.Workload == name {
				logSum += math.Log(row.Overhead)
				found = true
				break
			}
		}
		if !found {
			return 0, false
		}
	}
	return math.Exp(logSum / float64(len(names))), true
}

// GuardOverhead measures every workload's guard-transformed program
// with and without the monitor attached. Runs use the harness scale
// and the largest configured thread count; every guarded run must
// complete without a violation (the standard workloads' profiles cover
// their inputs) and match the unguarded output. quick restricts the
// sweep to GuardQuickWorkloads.
func (h *Harness) GuardOverhead(quick bool) (*GuardReport, error) {
	threads := h.cfg.Threads[len(h.cfg.Threads)-1]
	rep := &GuardReport{
		GoVersion: runtime.Version(),
		Scale:     scaleName(h.cfg.Scale),
		Threads:   threads,
		Reps:      guardReps,
	}
	ws := workloads.All()
	if quick {
		ws = ws[:0:0]
		for _, name := range GuardQuickWorkloads {
			ws = append(ws, workloads.ByName(name))
		}
	}
	logSum := 0.0
	for _, w := range ws {
		src := w.Source(h.cfg.Scale)
		psrc := w.Source(workloads.ProfileScale)
		if h.cfg.Scale == workloads.ProfileScale || h.cfg.Scale == workloads.Test {
			psrc = src
		}
		prog, err := gdsx.Compile(w.Name+".c", src)
		if err != nil {
			return nil, fmt.Errorf("%s: compile: %w", w.Name, err)
		}
		tr, err := gdsx.Transform(prog, gdsx.TransformOptions{
			Guard:         true,
			ProfileSource: psrc,
			ProfileOpts:   h.run(gdsx.RunOptions{}),
		})
		if err != nil {
			return nil, fmt.Errorf("%s: transform: %w", w.Name, err)
		}
		opts := h.run(gdsx.RunOptions{Threads: threads})

		row := GuardRow{Workload: w.Name}
		// Warm the Go heap once (see EngineComparison), then alternate
		// unguarded and guarded runs within each repetition. GuardedRun
		// recompiles the transformed source on every call, so the
		// unguarded baseline does too — the delta is purely the monitor.
		if _, err := gdsx.RunSource(w.Name+"-g.c", tr.Source, opts); err != nil {
			return nil, fmt.Errorf("%s (warmup): %w", w.Name, err)
		}
		bestBase := time.Duration(math.MaxInt64)
		bestGuard := time.Duration(math.MaxInt64)
		var baseOut, guardOut string
		for i := 0; i < guardReps; i++ {
			start := time.Now()
			res, err := gdsx.RunSource(w.Name+"-g.c", tr.Source, opts)
			if d := time.Since(start); err == nil && d < bestBase {
				bestBase = d
			}
			if err != nil {
				return nil, fmt.Errorf("%s (base): %w", w.Name, err)
			}
			baseOut = res.Output

			start = time.Now()
			gres, err := gdsx.GuardedRun(prog, tr, opts)
			if d := time.Since(start); err == nil && d < bestGuard {
				bestGuard = d
			}
			if err != nil {
				return nil, fmt.Errorf("%s (guarded): %w", w.Name, err)
			}
			if gres.FellBack || gres.Violation != nil {
				row.Violations = gres.Violation.Total
				return nil, fmt.Errorf("%s: guard fired on a profiled input:\n%s",
					w.Name, gres.Violation)
			}
			guardOut = gres.Result.Output
		}
		if baseOut != guardOut {
			return nil, fmt.Errorf("%s: guarded output diverges from unguarded", w.Name)
		}
		row.BaseNS = bestBase.Nanoseconds()
		row.GuardedNS = bestGuard.Nanoseconds()
		row.Overhead = float64(row.GuardedNS) / float64(row.BaseNS)
		logSum += math.Log(row.Overhead)
		rep.Rows = append(rep.Rows, row)
	}
	rep.Geomean = math.Exp(logSum / float64(len(rep.Rows)))
	return rep, nil
}

// Render formats the guard-overhead report as a text table.
func (r *GuardReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Guard overhead (wall clock, %s scale, %d threads, best of %d, %s)\n",
		r.Scale, r.Threads, r.Reps, r.GoVersion)
	fmt.Fprintf(&b, "%-16s %12s %12s %9s\n", "workload", "unguarded", "guarded", "overhead")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %12v %12v %8.2fx\n", row.Workload,
			time.Duration(row.BaseNS).Round(time.Microsecond),
			time.Duration(row.GuardedNS).Round(time.Microsecond),
			row.Overhead)
	}
	fmt.Fprintf(&b, "%-16s %12s %12s %8.2fx\n", "geomean", "", "", r.Geomean)
	return b.String()
}
