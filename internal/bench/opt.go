package bench

// Optimization-pipeline comparison: wall-clock time of the compiled
// engine with its optimization passes (register promotion,
// superinstruction fusion, profile-guided site specialization) against
// the same engine with the pipeline disabled. Like the engine
// comparison, this measures host time — the passes change dispatch
// cost only; output and counters stay identical (see the opt-parity
// tests at the repository root). Each workload is first profiled at
// the smaller profile scale with the hot-site profiler, and the
// resulting site weights drive the specializer during the measured
// runs — the same two-step flow as `gdsx pipeline -hotspots-json`
// followed by `-opt-profile`.

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"gdsx"
	"gdsx/internal/workloads"
)

// OptRow is one workload's noopt-vs-opt wall-clock measurement.
type OptRow struct {
	Workload string  `json:"workload"`
	NoOptNS  int64   `json:"noopt_ns"`
	OptNS    int64   `json:"opt_ns"`
	Speedup  float64 `json:"speedup"`
}

// OptReport is the full optimization comparison, serialized to
// BENCH_opt.json by gdsxbench -bench-opt.
type OptReport struct {
	GoVersion string   `json:"go_version"`
	Scale     string   `json:"scale"`
	Threads   int      `json:"threads"`
	Reps      int      `json:"reps"`
	Rows      []OptRow `json:"rows"`
	Geomean   float64  `json:"geomean_speedup"`
}

// OptQuickWorkloads is the subset the CI smoke gate measures
// (gdsxbench -bench-opt -quick): enough diversity — pointer chasing,
// bit twiddling, block transforms — to catch a pipeline regression
// without rerunning the full suite.
var OptQuickWorkloads = []string{"dijkstra", "256.bzip2", "md5"}

// GeomeanOver recomputes the report's geomean speedup over the named
// subset of its rows, so a quick measurement can be compared against
// the matching rows of a full checked-in report. Returns false if any
// name has no row.
func (r *OptReport) GeomeanOver(names []string) (float64, bool) {
	logSum := 0.0
	for _, name := range names {
		found := false
		for _, row := range r.Rows {
			if row.Workload == name {
				logSum += math.Log(row.Speedup)
				found = true
				break
			}
		}
		if !found {
			return 0, false
		}
	}
	return math.Exp(logSum / float64(len(names))), true
}

// hotProfile collects a workload's hot-site weights at profile scale.
func hotProfile(w *workloads.Workload, memSize int64) (*gdsx.SiteProfile, error) {
	prog, err := gdsx.Compile(w.Name+".c", w.Source(workloads.ProfileScale))
	if err != nil {
		return nil, err
	}
	o := gdsx.NewObserver(true)
	if _, err := prog.Run(gdsx.RunOptions{Threads: 1, MemSize: memSize, Obs: o}); err != nil {
		return nil, err
	}
	return gdsx.SiteProfileFromReports(o.Hot.Report()), nil
}

// OptComparison measures every workload's native program under the
// unoptimized and optimized compiled engine at the harness scale,
// single-threaded. quick restricts the sweep to OptQuickWorkloads.
func (h *Harness) OptComparison(quick bool) (*OptReport, error) {
	rep := &OptReport{
		GoVersion: runtime.Version(),
		Scale:     scaleName(h.cfg.Scale),
		Threads:   1,
		Reps:      engineReps,
	}
	ws := workloads.All()
	if quick {
		ws = ws[:0:0]
		for _, name := range OptQuickWorkloads {
			ws = append(ws, workloads.ByName(name))
		}
	}
	logSum := 0.0
	for _, w := range ws {
		prog, err := gdsx.Compile(w.Name+".c", w.Source(h.cfg.Scale))
		if err != nil {
			return nil, fmt.Errorf("%s: compile: %w", w.Name, err)
		}
		sites, err := hotProfile(w, h.cfg.MemSize)
		if err != nil {
			return nil, fmt.Errorf("%s: hot profile: %w", w.Name, err)
		}
		timeOpt := func(eng gdsx.Engine, sp *gdsx.SiteProfile) (time.Duration, error) {
			start := time.Now()
			_, err := prog.Run(gdsx.RunOptions{
				Threads: 1, MemSize: h.cfg.MemSize, Engine: eng, OptProfile: sp,
			})
			return time.Since(start), err
		}
		// Warm up untimed, then alternate the engines within each
		// repetition so neither is systematically favored (see
		// EngineComparison for the rationale).
		if _, err := timeOpt(gdsx.EngineCompiled, sites); err != nil {
			return nil, fmt.Errorf("%s (warmup): %w", w.Name, err)
		}
		bestNoOpt := time.Duration(math.MaxInt64)
		bestOpt := time.Duration(math.MaxInt64)
		for i := 0; i < engineReps; i++ {
			d, err := timeOpt(gdsx.EngineCompiledNoOpt, nil)
			if err != nil {
				return nil, fmt.Errorf("%s (noopt): %w", w.Name, err)
			}
			if d < bestNoOpt {
				bestNoOpt = d
			}
			if d, err = timeOpt(gdsx.EngineCompiled, sites); err != nil {
				return nil, fmt.Errorf("%s (opt): %w", w.Name, err)
			}
			if d < bestOpt {
				bestOpt = d
			}
		}
		row := OptRow{
			Workload: w.Name,
			NoOptNS:  bestNoOpt.Nanoseconds(),
			OptNS:    bestOpt.Nanoseconds(),
		}
		row.Speedup = float64(row.NoOptNS) / float64(row.OptNS)
		logSum += math.Log(row.Speedup)
		rep.Rows = append(rep.Rows, row)
	}
	rep.Geomean = math.Exp(logSum / float64(len(rep.Rows)))
	return rep, nil
}

// Render formats the comparison as a text table.
func (r *OptReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Optimization pipeline (wall clock, %s scale, %d thread, best of %d, %s)\n",
		r.Scale, r.Threads, r.Reps, r.GoVersion)
	fmt.Fprintf(&b, "%-16s %12s %12s %9s\n", "workload", "noopt", "opt", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %12v %12v %8.2fx\n", row.Workload,
			time.Duration(row.NoOptNS).Round(time.Microsecond),
			time.Duration(row.OptNS).Round(time.Microsecond),
			row.Speedup)
	}
	fmt.Fprintf(&b, "%-16s %12s %12s %8.2fx\n", "geomean", "", "", r.Geomean)
	return b.String()
}
