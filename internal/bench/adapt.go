package bench

// Adaptive speculation ladder: what each rung buys. Three measurements,
// serialized together as BENCH_adapt.json by gdsxbench -adapt.
//
//  1. Tiered guard sampling on clean regions: the monitor's checked
//     accesses (the "guard.events_logged" counter) under full guarding
//     vs the sampling ladder, on a workload that re-executes its region
//     enough times to earn the sampled tiers. The cut is deterministic
//     — it counts events, not nanoseconds — and the ladder must cut
//     checking at least in half.
//  2. Runtime re-expansion: the window workload violates at 4 threads
//     on every region execution, so a recover-only run is stuck
//     rolling back until the region demotes to sequential. The
//     adaptive driver re-expands (layout flip, then copy-count
//     halving) into a clean 2-thread configuration; the row compares
//     that steady state against the stuck baseline.
//  3. Commutative-update privatization: the reduction workload's
//     carried flow is real, so expansion alone cannot parallelize it;
//     privatized per-thread accumulators can. The row reports the
//     simulated loop speedup over native sequential execution (the
//     paper figures' currency — deterministic operation counts), with
//     a real guarded run proving engagement and correctness.

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"gdsx"
	"gdsx/internal/expand"
	"gdsx/internal/workloads"
)

// AdaptSampleRow is one clean-region sampling measurement: the same
// guarded run with the tier controller off and on.
type AdaptSampleRow struct {
	// Workload labels the row; a "/k<N>" suffix marks a non-default
	// first sampled tier.
	Workload string `json:"workload"`
	// FullEvents and SampledEvents count the accesses the monitor
	// logged and replayed across the whole run (all region executions).
	FullEvents    int64 `json:"full_events"`
	SampledEvents int64 `json:"sampled_events"`
	// CheckCut is FullEvents/SampledEvents — how much checking the
	// ladder removed. Deterministic: the workload is clean, so the tier
	// schedule (and therefore the sampled log volume) never varies.
	CheckCut float64 `json:"check_cut"`
	// Wall clock for context; the gate reads CheckCut.
	FullNS    int64 `json:"full_ns"`
	SampledNS int64 `json:"sampled_ns"`
}

// AdaptReexpandRow compares the recovery ladder without and with
// runtime re-expansion on a region that violates as expanded.
type AdaptReexpandRow struct {
	Workload string `json:"workload"`
	// BaselineNS is the recover-only run: rollback and sequential
	// re-execution on every violating region execution until demotion.
	// BaselineRecovered counts those rollbacks.
	BaselineNS        int64 `json:"baseline_ns"`
	BaselineRecovered int   `json:"baseline_recovered"`
	// AdaptedNS is the steady state the adaptive driver reached —
	// the re-expanded program at the reduced copy count, violation-free.
	AdaptedNS int64   `json:"adapted_ns"`
	Speedup   float64 `json:"speedup"`
	// The decisions that got there.
	Attempts     int    `json:"attempts"`
	Reexpansions int    `json:"reexpansions"`
	FinalLayout  string `json:"final_layout"`
	FinalThreads int    `json:"final_threads"`
}

// AdaptCommRow compares the privatized parallel reduction against
// native sequential execution in the schedule simulator's currency —
// deterministic operation counts, like the paper's speedup figures
// (host wall clock cannot show a parallel win for any interpreted
// workload; see the package comment of bench.go).
type AdaptCommRow struct {
	Workload      string `json:"workload"`
	NativeLoopOps int64  `json:"native_loop_ops"`
	// Speedup maps thread count to the simulated loop speedup of the
	// commutative-expanded program over the native sequential loop. The
	// top-thread-count entry must exceed 1: privatization exists to
	// parallelize the reduction expansion alone cannot touch.
	Speedup map[int]float64 `json:"speedup"`
	// Privatizer engagement evidence from a real guarded parallel run
	// (which also checks output correctness and violation-freedom).
	Redirected int64 `json:"redirected"`
	Merged     int64 `json:"merged"`
}

// AdaptReport is the full adaptive-ladder measurement, serialized to
// BENCH_adapt.json by gdsxbench -adapt.
type AdaptReport struct {
	GoVersion string             `json:"go_version"`
	Scale     string             `json:"scale"`
	Threads   int                `json:"threads"`
	Reps      int                `json:"reps"`
	Sampling  []AdaptSampleRow   `json:"sampling"`
	// SampleGeomean is the geomean check cut over the sampling rows —
	// the scalar the CI smoke gate tracks (higher is better).
	SampleGeomean float64            `json:"sample_geomean"`
	Reexpand      []AdaptReexpandRow `json:"reexpand"`
	Comm          []AdaptCommRow     `json:"comm"`
}

const adaptReps = 3

// GeomeanOver recomputes the geomean check cut over the named subset
// of the report's sampling rows, so a quick measurement can be gated
// against the matching rows of a checked-in report. Returns false if
// any name has no row.
func (r *AdaptReport) GeomeanOver(names []string) (float64, bool) {
	logSum := 0.0
	for _, name := range names {
		found := false
		for _, row := range r.Sampling {
			if row.Workload == name {
				logSum += math.Log(row.CheckCut)
				found = true
				break
			}
		}
		if !found {
			return 0, false
		}
	}
	return math.Exp(logSum / float64(len(names))), true
}

// Adapt runs the three adaptive-ladder measurements. quick skips the
// wall-clock-dependent acceptance checks (CI hosts are noisy; the
// smoke gate compares the deterministic check cut against the
// checked-in report instead) but still runs every section.
func (h *Harness) Adapt(quick bool) (*AdaptReport, error) {
	threads := h.cfg.Threads[len(h.cfg.Threads)-1]
	rep := &AdaptReport{
		GoVersion: runtime.Version(),
		Scale:     scaleName(h.cfg.Scale),
		Threads:   threads,
		Reps:      adaptReps,
	}

	// Section 1: sampled-tier check cut on the clean escape profile
	// (ten region executions — enough to earn successive sampled
	// tiers), under the default ladder and an aggressive k=8 first
	// tier.
	for _, cfg := range []struct {
		label string
		spec  gdsx.TierSpec
	}{
		{"adversarial-escape", gdsx.TierSpec{}},
		{"adversarial-escape/k8", gdsx.TierSpec{SampleK: 8}},
	} {
		row, err := h.adaptSampleRow(cfg.label, cfg.spec, threads)
		if err != nil {
			return nil, err
		}
		rep.Sampling = append(rep.Sampling, *row)
	}
	logSum := 0.0
	for _, row := range rep.Sampling {
		logSum += math.Log(row.CheckCut)
	}
	rep.SampleGeomean = math.Exp(logSum / float64(len(rep.Sampling)))
	if rep.SampleGeomean < 2 {
		return nil, fmt.Errorf("sampling: geomean check cut %.2fx is below the 2x floor"+
			" the ladder must clear on clean regions", rep.SampleGeomean)
	}

	// Section 2: the re-expansion win. 4 threads static so the
	// violation window straddles a chunk boundary on every execution.
	rerow, err := h.adaptReexpandRow(quick)
	if err != nil {
		return nil, err
	}
	rep.Reexpand = append(rep.Reexpand, *rerow)

	// Section 3: the privatized reduction against native sequential.
	crow, err := h.adaptCommRow(threads)
	if err != nil {
		return nil, err
	}
	rep.Comm = append(rep.Comm, *crow)
	return rep, nil
}

// adaptSampleRow measures one sampling configuration. Both runs
// execute the same guarded program; only the tier controller differs,
// so the event-count delta is exactly the checking the ladder skipped.
func (h *Harness) adaptSampleRow(label string, spec gdsx.TierSpec, threads int) (*AdaptSampleRow, error) {
	w := workloads.AdversarialEscape()
	src := w.Profile(h.cfg.Scale)
	prog, err := gdsx.Compile(w.Name+".c", src)
	if err != nil {
		return nil, fmt.Errorf("%s: compile: %w", label, err)
	}
	want, err := prog.Run(h.run(gdsx.RunOptions{ForceSequential: true}))
	if err != nil {
		return nil, fmt.Errorf("%s: native run: %w", label, err)
	}
	tr, err := gdsx.Transform(prog, gdsx.TransformOptions{Guard: true, ProfileSource: src})
	if err != nil {
		return nil, fmt.Errorf("%s: transform: %w", label, err)
	}

	row := &AdaptSampleRow{Workload: label}
	run := func(sample *gdsx.TierSpec) (int64, int64, error) {
		// Each run gets its own registry: the monitor publishes its
		// logged-event count there, and the cut is the ratio between
		// two isolated counts (the harness-wide observer, if any,
		// cannot be shared without conflating the two runs).
		best := time.Duration(math.MaxInt64)
		var events int64
		for i := 0; i <= adaptReps; i++ {
			reg := gdsx.NewRegistry()
			opts := h.run(gdsx.RunOptions{Threads: threads, Sched: gdsx.SchedStatic})
			opts.Obs = &gdsx.Observer{Metrics: reg}
			opts.Sample = sample
			opts.Recover = &gdsx.RecoverySpec{}
			start := time.Now()
			res, err := gdsx.GuardedRun(prog, tr, opts)
			d := time.Since(start)
			if err != nil {
				return 0, 0, fmt.Errorf("%s: guarded run: %w", label, err)
			}
			if res.FellBack || len(res.Violations) > 0 {
				return 0, 0, fmt.Errorf("%s: guard fired on the clean profile", label)
			}
			if res.Result.Output != want.Output {
				return 0, 0, fmt.Errorf("%s: guarded output diverges from native", label)
			}
			if i == 0 {
				continue // warmup: populate the Go heap, drop the timing
			}
			if d < best {
				best = d
			}
			events = reg.Snapshot().Counters["guard.events_logged"]
		}
		return events, best.Nanoseconds(), nil
	}
	if row.FullEvents, row.FullNS, err = run(nil); err != nil {
		return nil, err
	}
	if row.SampledEvents, row.SampledNS, err = run(&spec); err != nil {
		return nil, err
	}
	if row.SampledEvents <= 0 {
		return nil, fmt.Errorf("%s: sampled run logged no events", label)
	}
	row.CheckCut = float64(row.FullEvents) / float64(row.SampledEvents)
	return row, nil
}

// adaptReexpandRow measures the window workload stuck in the recovery
// ladder vs the configuration the adaptive driver re-expands into.
func (h *Harness) adaptReexpandRow(quick bool) (*AdaptReexpandRow, error) {
	w := workloads.AdversarialWindow()
	prog, err := gdsx.Compile(w.Name+".c", w.Expose(h.cfg.Scale))
	if err != nil {
		return nil, fmt.Errorf("%s: compile: %w", w.Name, err)
	}
	want, err := prog.Run(h.run(gdsx.RunOptions{ForceSequential: true}))
	if err != nil {
		return nil, fmt.Errorf("%s: native run: %w", w.Name, err)
	}
	topts := gdsx.TransformOptions{Guard: true, ProfileSource: w.Profile(h.cfg.Scale)}
	tr, err := gdsx.Transform(prog, topts)
	if err != nil {
		return nil, fmt.Errorf("%s: transform: %w", w.Name, err)
	}
	row := &AdaptReexpandRow{Workload: w.Name}

	// The adaptive decision pass is untimed: re-expansion is a one-off
	// cost amortized over the program's lifetime, and what production
	// keeps paying is the steady state it lands in.
	ares, err := gdsx.AdaptiveRun(prog, gdsx.AdaptiveOptions{
		Transform: topts,
		Run:       h.run(gdsx.RunOptions{Threads: 4, Sched: gdsx.SchedStatic}),
	})
	if err != nil {
		return nil, fmt.Errorf("%s: adaptive run: %w", w.Name, err)
	}
	if ares.Final.Result.Output != want.Output {
		return nil, fmt.Errorf("%s: adaptive output diverges from native", w.Name)
	}
	if ares.Threads < 2 {
		return nil, fmt.Errorf("%s: re-expansion failed to keep the region parallel"+
			" (final copy count %d)", w.Name, ares.Threads)
	}
	if len(ares.Reexpansions) == 0 {
		return nil, fmt.Errorf("%s: the violating window triggered no re-expansion", w.Name)
	}
	row.Attempts = ares.Attempts
	row.Reexpansions = len(ares.Reexpansions)
	row.FinalLayout = ares.Layout
	row.FinalThreads = ares.Threads

	measure := func(t *gdsx.TransformResult, threads int, wantClean bool) (int64, int, error) {
		best := time.Duration(math.MaxInt64)
		recovered := 0
		for i := 0; i <= adaptReps; i++ {
			opts := h.run(gdsx.RunOptions{Threads: threads, Sched: gdsx.SchedStatic})
			opts.Recover = &gdsx.RecoverySpec{}
			// Both sides run the full ladder, sampling included. The tier
			// spec only affects clean streaks, so the violating baseline
			// is untouched by it; the adapted steady state earns the
			// sampled tier immediately (the region was just re-expanded
			// specifically to be clean), which is the configuration
			// production keeps paying for.
			opts.Sample = &gdsx.TierSpec{PromoteAfter: 1, SampleK: 8}
			start := time.Now()
			res, err := gdsx.GuardedRun(prog, t, opts)
			d := time.Since(start)
			if err != nil {
				return 0, 0, err
			}
			if res.Result.Output != want.Output {
				return 0, 0, fmt.Errorf("output diverges from native")
			}
			if wantClean && len(res.Violations) > 0 {
				return 0, 0, fmt.Errorf("steady state still violates (%d regions)",
					len(res.Violations))
			}
			if i == 0 {
				continue
			}
			if d < best {
				best = d
			}
			recovered = res.Recovered
		}
		return best.Nanoseconds(), recovered, nil
	}
	if row.BaselineNS, row.BaselineRecovered, err = measure(tr, 4, false); err != nil {
		return nil, fmt.Errorf("%s (baseline): %w", w.Name, err)
	}
	var adaptedRecovered int
	if row.AdaptedNS, adaptedRecovered, err = measure(ares.Transform, ares.Threads, true); err != nil {
		return nil, fmt.Errorf("%s (adapted): %w", w.Name, err)
	}
	_ = adaptedRecovered // clean by the wantClean check above
	if row.BaselineRecovered == 0 {
		return nil, fmt.Errorf("%s: baseline never rolled back — the window did not violate", w.Name)
	}
	row.Speedup = float64(row.BaselineNS) / float64(row.AdaptedNS)
	if !quick && row.Speedup <= 1 {
		return nil, fmt.Errorf("%s: adapted steady state (%.2fx) does not beat the"+
			" stuck-at-demoted baseline", w.Name, row.Speedup)
	}
	return row, nil
}

// adaptCommRow measures the commutative reduction: simulated loop
// speedup of the privatized parallel loop over the native sequential
// one (the same currency as Figure 11's expansion speedups), plus a
// real guarded parallel run proving the privatizer engages, the region
// stays violation-free, and the output matches.
func (h *Harness) adaptCommRow(threads int) (*AdaptCommRow, error) {
	w := workloads.CommReduce()
	src := w.Profile(h.cfg.Scale)
	prog, err := gdsx.Compile(w.Name+".c", src)
	if err != nil {
		return nil, fmt.Errorf("%s: compile: %w", w.Name, err)
	}
	eopts := expand.Optimized()
	eopts.Commutative = true
	tr, err := gdsx.Transform(prog, gdsx.TransformOptions{
		Guard:         true,
		ProfileSource: src,
		Expand:        &eopts,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: transform: %w", w.Name, err)
	}
	row := &AdaptCommRow{Workload: w.Name, Speedup: map[int]float64{}}

	// Traced sequential runs of the native and the commutative-expanded
	// program feed the schedule simulator (see Harness.Data): the
	// expansion left the accumulators shared — sequentially that is
	// simply the in-order reduction, so the trace is exact — and marked
	// the loop parallel because privatization will carry its flow.
	native, err := prog.Run(h.run(gdsx.RunOptions{Threads: 1, Trace: true}))
	if err != nil {
		return nil, fmt.Errorf("%s: native run: %w", w.Name, err)
	}
	exp, err := gdsx.RunSource(w.Name+"-x.c", tr.Source,
		h.run(gdsx.RunOptions{Threads: 1, Trace: true}))
	if err != nil {
		return nil, fmt.Errorf("%s: expanded run: %w", w.Name, err)
	}
	if exp.Output != native.Output {
		return nil, fmt.Errorf("%s: expanded output diverges from native", w.Name)
	}
	row.NativeLoopOps = loopOps(native)
	for _, n := range h.cfg.Threads {
		lt, _ := h.loopTime(exp, n)
		row.Speedup[n] = float64(row.NativeLoopOps) / float64(lt)
	}
	if row.Speedup[threads] <= 1 {
		return nil, fmt.Errorf("%s: privatized reduction (%.2fx at %d threads) does"+
			" not beat sequential execution", w.Name, row.Speedup[threads], threads)
	}

	// The engagement check: a real guarded parallel run under the full
	// ladder. The region is clean (privatization removed its carried
	// flow), so it must stay violation-free, produce native output, and
	// actually route the accumulator traffic through private copies.
	opts := h.run(gdsx.RunOptions{Threads: threads, Sched: gdsx.SchedStatic})
	opts.Recover = &gdsx.RecoverySpec{}
	opts.Sample = &gdsx.TierSpec{PromoteAfter: 1, SampleK: 8}
	gres, err := gdsx.GuardedRun(prog, tr, opts)
	if err != nil {
		return nil, fmt.Errorf("%s (privatized): %w", w.Name, err)
	}
	if gres.FellBack || len(gres.Violations) > 0 {
		return nil, fmt.Errorf("%s: privatization left a violation:\n%v",
			w.Name, gres.Violation)
	}
	if gres.Result.Output != native.Output {
		return nil, fmt.Errorf("%s: privatized output diverges from sequential", w.Name)
	}
	if gres.Comm == nil || gres.Comm.Redirected == 0 || gres.Comm.Merged == 0 {
		return nil, fmt.Errorf("%s: the privatizer never engaged: %+v", w.Name, gres.Comm)
	}
	row.Redirected = gres.Comm.Redirected
	row.Merged = gres.Comm.Merged
	return row, nil
}

// threadCounts collects the sorted thread counts present in the comm
// rows' speedup maps (JSON round-trips lose the config ordering).
func threadCounts(rows []AdaptCommRow) []int {
	seen := map[int]bool{}
	for _, row := range rows {
		for n := range row.Speedup {
			seen[n] = true
		}
	}
	ns := make([]int, 0, len(seen))
	for n := range seen {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	return ns
}

// Render formats the adaptive-ladder report as text tables.
func (r *AdaptReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Guard sampling: checked accesses, full vs tiered (%s scale, %d threads, %s)\n",
		r.Scale, r.Threads, r.GoVersion)
	fmt.Fprintf(&b, "%-24s %12s %12s %9s %10s %10s\n",
		"workload", "full", "sampled", "cut", "full", "sampled")
	for _, row := range r.Sampling {
		fmt.Fprintf(&b, "%-24s %12d %12d %8.2fx %10v %10v\n",
			row.Workload, row.FullEvents, row.SampledEvents, row.CheckCut,
			time.Duration(row.FullNS).Round(time.Microsecond),
			time.Duration(row.SampledNS).Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "%-24s %12s %12s %8.2fx\n", "geomean", "", "", r.SampleGeomean)

	fmt.Fprintf(&b, "\nRuntime re-expansion: stuck recovery baseline vs adapted steady state (best of %d)\n", r.Reps)
	fmt.Fprintf(&b, "%-20s %12s %10s %12s %8s %s\n",
		"workload", "baseline", "rollbacks", "adapted", "speedup", "decision")
	for _, row := range r.Reexpand {
		fmt.Fprintf(&b, "%-20s %12v %10d %12v %7.2fx %d attempts -> %s x%d\n",
			row.Workload,
			time.Duration(row.BaselineNS).Round(time.Microsecond), row.BaselineRecovered,
			time.Duration(row.AdaptedNS).Round(time.Microsecond), row.Speedup,
			row.Attempts, row.FinalLayout, row.FinalThreads)
	}

	fmt.Fprintf(&b, "\nCommutative privatization: simulated loop speedup over sequential\n")
	fmt.Fprintf(&b, "%-20s %12s", "workload", "loop ops")
	for _, n := range threadCounts(r.Comm) {
		fmt.Fprintf(&b, " %7s", fmt.Sprintf("n=%d", n))
	}
	fmt.Fprintf(&b, " %12s %8s\n", "redirected", "merged")
	for _, row := range r.Comm {
		fmt.Fprintf(&b, "%-20s %12d", row.Workload, row.NativeLoopOps)
		for _, n := range threadCounts(r.Comm) {
			fmt.Fprintf(&b, " %6.2fx", row.Speedup[n])
		}
		fmt.Fprintf(&b, " %12d %8d\n", row.Redirected, row.Merged)
	}
	return b.String()
}
