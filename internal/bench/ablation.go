package bench

import (
	"fmt"
	"strings"

	"gdsx"
	"gdsx/internal/expand"
	"gdsx/internal/schedule"
	"gdsx/internal/workloads"
)

// AblationSyncRow compares the minimal DOACROSS ordered-section
// placement against the conservative whole-body placement (the paper
// notes its own placement "still has room for improvement"; the coarse
// variant reproduces the sync-dominated behaviour it reports for
// 256.bzip2 and 456.hmmer).
type AblationSyncRow struct {
	Name           string
	TightSpeedup8  float64
	CoarseSpeedup8 float64
	CoarseWaitPct8 float64
}

// AblationSync runs the sync-placement ablation over the DOACROSS
// workloads.
func (h *Harness) AblationSync() ([]AblationSyncRow, error) {
	var rows []AblationSyncRow
	for _, w := range workloads.All() {
		if w.Parallelism != "DOACROSS" {
			continue
		}
		d, err := h.Data(w)
		if err != nil {
			return nil, err
		}
		coarseOpts := expand.Optimized()
		coarseOpts.ConservativeSync = true
		coarse, err := h.tracedVariant(d, coarseOpts)
		if err != nil {
			return nil, err
		}
		nativeLoop := float64(loopOps(d.native))
		tight8, _ := h.loopTime(d.opt, 8)
		coarse8, agg := h.loopTime(coarse, 8)
		tot := float64(agg.Busy + agg.Sync + agg.Wait)
		if tot == 0 {
			tot = 1
		}
		rows = append(rows, AblationSyncRow{
			Name:           w.Name,
			TightSpeedup8:  nativeLoop / float64(tight8),
			CoarseSpeedup8: nativeLoop / float64(coarse8),
			CoarseWaitPct8: 100 * float64(agg.Wait) / tot,
		})
	}
	return rows, nil
}

// AblationHoistRow compares the single-core overhead of the expanded
// program with and without redirected-base hoisting (§3.4 CSE).
type AblationHoistRow struct {
	Name      string
	Hoisted   float64
	Unhoisted float64
}

// AblationHoist runs the base-hoisting ablation over every workload.
func (h *Harness) AblationHoist() ([]AblationHoistRow, error) {
	var rows []AblationHoistRow
	for _, w := range workloads.All() {
		d, err := h.Data(w)
		if err != nil {
			return nil, err
		}
		flatOpts := expand.Optimized()
		flatOpts.HoistBases = false
		flat, err := h.tracedVariant(d, flatOpts)
		if err != nil {
			return nil, err
		}
		n := float64(d.native.Counters[0])
		rows = append(rows, AblationHoistRow{
			Name:      w.Name,
			Hoisted:   float64(d.opt.Counters[0]) / n,
			Unhoisted: float64(flat.Counters[0]) / n,
		})
	}
	return rows, nil
}

// tracedVariant transforms a workload with custom expansion options and
// returns its traced sequential run.
func (h *Harness) tracedVariant(d *wlData, opts expand.Options) (gdsx.Result, error) {
	prog, err := gdsx.Compile(d.w.Name+".c", d.src)
	if err != nil {
		return gdsx.Result{}, err
	}
	tr, err := gdsx.Transform(prog, gdsx.TransformOptions{
		Expand:        &opts,
		ProfileSource: d.psrc,
		ProfileOpts:   h.run(gdsx.RunOptions{}),
	})
	if err != nil {
		return gdsx.Result{}, fmt.Errorf("%s: variant transform: %w", d.w.Name, err)
	}
	res, err := gdsx.RunSource(d.w.Name+"-v.c", tr.Source,
		h.run(gdsx.RunOptions{Threads: 1, Trace: true}))
	if err != nil {
		return gdsx.Result{}, err
	}
	if res.Output != d.native.Output {
		return gdsx.Result{}, fmt.Errorf("%s: variant output diverges", d.w.Name)
	}
	return res, nil
}

// AblationChunkRow reports the 8-thread loop speedup of one DOACROSS
// workload at one dynamic chunk size.
type AblationChunkRow struct {
	Name     string
	Chunk    int
	Speedup8 float64
}

// AblationChunk sweeps the DOACROSS chunk size over the ordered
// workloads, validating the paper's choice of chunk size 1 (§4.3):
// larger chunks serialize the ordered-section pipeline.
func (h *Harness) AblationChunk() ([]AblationChunkRow, error) {
	var rows []AblationChunkRow
	for _, w := range workloads.All() {
		if w.Parallelism != "DOACROSS" {
			continue
		}
		d, err := h.Data(w)
		if err != nil {
			return nil, err
		}
		nativeLoop := float64(loopOps(d.native))
		for _, chunk := range []int{1, 2, 4, 8} {
			m := h.cfg.Model
			m.DynamicChunk = chunk
			var total int64
			for _, tr := range d.opt.Traces {
				total += schedule.Simulate(tr, 8, m).Time
			}
			rows = append(rows, AblationChunkRow{
				Name: w.Name, Chunk: chunk, Speedup8: nativeLoop / float64(total),
			})
		}
	}
	return rows, nil
}

// RenderChunkAblation formats the chunk sweep.
func RenderChunkAblation(rows []AblationChunkRow) string {
	var sb strings.Builder
	sb.WriteString("\nAblation: DOACROSS dynamic chunk size (loop speedup at 8 threads)\n")
	sb.WriteString("=================================================================\n")
	t := &table{}
	t.add("benchmark", "chunk 1", "chunk 2", "chunk 4", "chunk 8")
	byName := map[string][]float64{}
	var order []string
	for _, r := range rows {
		if _, ok := byName[r.Name]; !ok {
			order = append(order, r.Name)
		}
		byName[r.Name] = append(byName[r.Name], r.Speedup8)
	}
	for _, name := range order {
		v := byName[name]
		t.add(name, f2(v[0]), f2(v[1]), f2(v[2]), f2(v[3]))
	}
	sb.WriteString(t.String())
	return sb.String()
}

// layoutProbeSrc is a microbenchmark for the layout ablation: a heap
// buffer much larger than the modeled 64 KiB cache, streamed by every
// iteration. In bonded mode one thread's copy is contiguous; in
// interleaved mode its elements are N*4 bytes apart, so each cache
// line carries data of N threads and a thread touches N times as many
// lines — the locality argument of the paper's §3.1.
const layoutProbeSrc = `
int main() {
    int n = 32768;
    int *buf = (int*)malloc(n * 4);
    int *out = (int*)malloc(8 * 4);
    int it;
    parallel for (it = 0; it < 8; it++) {
        int k;
        for (k = 0; k < n; k++) {
            buf[k] = it + k;
        }
        int s = 0;
        for (k = 0; k < n; k++) {
            s += buf[k];
        }
        out[it] = s;
    }
    long total = 0;
    for (it = 0; it < 8; it++) { total += out[it]; }
    print_long(total);
    free(buf);
    free(out);
    return 0;
}
`

// AblationLayoutRow reports the cache misses of the layout probe under
// one copy layout at 8 simulated threads.
type AblationLayoutRow struct {
	Layout      string
	CacheMisses int64
	LoopOps     int64
}

// AblationLayout measures the locality gap between the bonded and
// interleaved layouts (paper Fig. 2 discussion).
func (h *Harness) AblationLayout() ([]AblationLayoutRow, error) {
	var rows []AblationLayoutRow
	for _, layout := range []expand.Layout{expand.Bonded, expand.Interleaved} {
		opts := expand.Optimized()
		opts.Layout = layout
		prog, err := gdsx.Compile("layout.c", layoutProbeSrc)
		if err != nil {
			return nil, err
		}
		tr, err := gdsx.Transform(prog, gdsx.TransformOptions{Expand: &opts})
		if err != nil {
			return nil, fmt.Errorf("layout probe (%v): %w", layout, err)
		}
		res, err := gdsx.RunSource("layout-x.c", tr.Source,
			h.run(gdsx.RunOptions{Threads: 8, Trace: true}))
		if err != nil {
			return nil, err
		}
		var miss, ops int64
		for _, t := range res.Traces {
			for _, c := range t.Iters {
				miss += c.Mem
				ops += c.Total()
			}
		}
		rows = append(rows, AblationLayoutRow{
			Layout: layout.String(), CacheMisses: miss, LoopOps: ops,
		})
	}
	return rows, nil
}

// RenderAblations formats both ablation tables.
func RenderAblations(sync []AblationSyncRow, hoist []AblationHoistRow) string {
	var sb strings.Builder
	sb.WriteString("\nAblation: DOACROSS sync placement (loop speedup at 8 threads)\n")
	sb.WriteString("=============================================================\n")
	t := &table{}
	t.add("benchmark", "minimal placement", "whole-body (paper-like)", "coarse wait %")
	for _, r := range sync {
		t.add(r.Name, f2(r.TightSpeedup8), f2(r.CoarseSpeedup8), f1(r.CoarseWaitPct8))
	}
	sb.WriteString(t.String())

	sb.WriteString("\nAblation: redirected-base hoisting (1-core slowdown)\n")
	sb.WriteString("====================================================\n")
	t = &table{}
	t.add("benchmark", "hoisted (§3.4)", "unhoisted")
	for _, r := range hoist {
		t.add(r.Name, f2(r.Hoisted), f2(r.Unhoisted))
	}
	sb.WriteString(t.String())
	return sb.String()
}

// RenderLayoutAblation formats the layout locality table.
func RenderLayoutAblation(rows []AblationLayoutRow) string {
	var sb strings.Builder
	sb.WriteString("\nAblation: copy layout locality (layout probe, 8 threads)\n")
	sb.WriteString("========================================================\n")
	t := &table{}
	t.add("layout", "cache misses", "loop ops")
	for _, r := range rows {
		t.add(r.Layout, fmt.Sprint(r.CacheMisses), fmt.Sprint(r.LoopOps))
	}
	sb.WriteString(t.String())
	return sb.String()
}
