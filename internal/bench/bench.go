// Package bench is the evaluation harness: it regenerates every table
// and figure of the paper's evaluation section (§4) over the eight
// workload programs. Timing numbers are simulated operation counts
// from the deterministic schedule simulator (package schedule), so the
// harness produces identical results on any host; memory numbers come
// from the simulated allocator's high-water mark.
package bench

import (
	"fmt"

	"gdsx"
	"gdsx/internal/ddg"
	"gdsx/internal/expand"
	"gdsx/internal/interp"
	"gdsx/internal/rtpriv"
	"gdsx/internal/schedule"
	"gdsx/internal/workloads"
)

// Config controls the harness.
type Config struct {
	// Scale is the input size of the measured runs (profiling always
	// uses workloads.ProfileScale inputs, like the paper's train/ref
	// split).
	Scale workloads.Scale
	// Threads are the simulated core counts of Figures 11/13/14.
	Threads []int
	// Model is the simulated machine (see schedule.Model).
	Model schedule.Model
	// MemSize for program runs.
	MemSize int64
	// Engine is the execution engine every measured run uses (the zero
	// value is the closure-compiling engine). The simulated operation
	// counts are engine-independent; only host wall-clock changes.
	Engine gdsx.Engine
	// Obs, when set, attaches an observer to every harness run — the
	// gdsxbench -http endpoint uses a metrics-only observer here so
	// expvar serves live counters while experiments execute. The
	// wall-clock benchmark modes (EngineComparison, ObsOverhead) manage
	// their own observers and ignore this field.
	Obs *gdsx.Observer
}

// DefaultConfig measures at bench scale on 1,2,4,8 simulated cores.
func DefaultConfig() Config {
	return Config{
		Scale:   workloads.BenchScale,
		Threads: []int{1, 2, 4, 8},
		Model:   schedule.DefaultModel(),
		MemSize: 256 << 20,
	}
}

// wlData caches everything the experiments need about one workload.
type wlData struct {
	w    *workloads.Workload
	src  string
	psrc string // profile-scale source

	// Traced sequential runs (deterministic op counts + loop traces).
	native gdsx.Result // original program
	opt    gdsx.Result // expanded, §3.4 optimizations on
	unopt  gdsx.Result // expanded, optimizations off
	rt     gdsx.Result // original under runtime privatization

	optTR   *gdsx.TransformResult
	unoptTR *gdsx.TransformResult
	rtStats gdsx.RtStats

	// nativeMem is the allocator high water of the untransformed run.
	nativeMem int64
	// expMem / rtMem are high-water marks per thread count.
	expMem map[int]int64
	rtMem  map[int]int64
}

// Harness runs experiments, computing each workload's data lazily and
// caching it across experiments.
type Harness struct {
	cfg  Config
	data map[string]*wlData
}

// New creates a harness.
func New(cfg Config) *Harness {
	if len(cfg.Threads) == 0 {
		cfg.Threads = []int{1, 2, 4, 8}
	}
	if cfg.MemSize == 0 {
		cfg.MemSize = 256 << 20
	}
	if cfg.Model == (schedule.Model{}) {
		cfg.Model = schedule.DefaultModel()
	}
	return &Harness{cfg: cfg, data: map[string]*wlData{}}
}

func (h *Harness) run(opts gdsx.RunOptions) gdsx.RunOptions {
	opts.MemSize = h.cfg.MemSize
	opts.Engine = h.cfg.Engine
	opts.Obs = h.cfg.Obs
	return opts
}

// Data computes (or returns cached) measurements for one workload.
func (h *Harness) Data(w *workloads.Workload) (*wlData, error) {
	if d, ok := h.data[w.Name]; ok {
		return d, nil
	}
	d := &wlData{
		w:      w,
		src:    w.Source(h.cfg.Scale),
		psrc:   w.Source(workloads.ProfileScale),
		expMem: map[int]int64{},
		rtMem:  map[int]int64{},
	}
	if h.cfg.Scale == workloads.ProfileScale || h.cfg.Scale == workloads.Test {
		d.psrc = d.src // same scale: profile directly
	}

	prog, err := gdsx.Compile(w.Name+".c", d.src)
	if err != nil {
		return nil, fmt.Errorf("%s: compile: %w", w.Name, err)
	}
	d.native, err = prog.Run(h.run(gdsx.RunOptions{Threads: 1, Trace: true}))
	if err != nil {
		return nil, fmt.Errorf("%s: native run: %w", w.Name, err)
	}
	d.nativeMem = d.native.MemStats.HighWaterData

	topts := gdsx.TransformOptions{ProfileSource: d.psrc, ProfileOpts: h.run(gdsx.RunOptions{})}
	d.optTR, err = gdsx.Transform(prog, topts)
	if err != nil {
		return nil, fmt.Errorf("%s: transform: %w", w.Name, err)
	}
	un := expand.Unoptimized()
	uopts := topts
	uopts.Expand = &un
	d.unoptTR, err = gdsx.Transform(prog, uopts)
	if err != nil {
		return nil, fmt.Errorf("%s: transform (unoptimized): %w", w.Name, err)
	}

	d.opt, err = gdsx.RunSource(w.Name+"-x.c", d.optTR.Source,
		h.run(gdsx.RunOptions{Threads: 1, Trace: true}))
	if err != nil {
		return nil, fmt.Errorf("%s: expanded run: %w", w.Name, err)
	}
	d.unopt, err = gdsx.RunSource(w.Name+"-u.c", d.unoptTR.Source,
		h.run(gdsx.RunOptions{Threads: 1, Trace: true}))
	if err != nil {
		return nil, fmt.Errorf("%s: unoptimized run: %w", w.Name, err)
	}
	if d.opt.Output != d.native.Output || d.unopt.Output != d.native.Output {
		return nil, fmt.Errorf("%s: transformed output diverges from native", w.Name)
	}

	// Runtime privatization (traced; private sites from the profile-
	// scale program, whose site numbering matches).
	pprog, err := gdsx.Compile(w.Name+"-p.c", d.psrc)
	if err != nil {
		return nil, fmt.Errorf("%s: compile profile input: %w", w.Name, err)
	}
	sites, err := pprog.PrivateSites(h.run(gdsx.RunOptions{}))
	if err != nil {
		return nil, fmt.Errorf("%s: private sites: %w", w.Name, err)
	}
	rprog, err := gdsx.Compile(w.Name+".c", d.src)
	if err != nil {
		return nil, err
	}
	d.rt, d.rtStats, err = rprog.RunRuntimePrivatized(sites,
		h.run(gdsx.RunOptions{Threads: 1, Trace: true}))
	if err != nil {
		return nil, fmt.Errorf("%s: runtime privatization: %w", w.Name, err)
	}
	if d.rt.Output != d.native.Output {
		return nil, fmt.Errorf("%s: runtime-privatized output diverges", w.Name)
	}

	// Memory use per thread count (paper Figure 14). Expansion: the
	// transformed program with __nthreads = n. Runtime privatization:
	// the monitor's per-thread copies during real parallel execution.
	for _, n := range h.cfg.Threads {
		res, err := gdsx.RunSource(w.Name+"-m.c", d.optTR.Source,
			h.run(gdsx.RunOptions{Threads: n, ForceSequential: true}))
		if err != nil {
			return nil, fmt.Errorf("%s: memory run N=%d: %w", w.Name, n, err)
		}
		d.expMem[n] = res.MemStats.HighWaterData

		mp, err := gdsx.Compile(w.Name+".c", d.src)
		if err != nil {
			return nil, err
		}
		rres, _, err := mp.RunRuntimePrivatized(sites, h.run(gdsx.RunOptions{Threads: n}))
		if err != nil {
			return nil, fmt.Errorf("%s: rtpriv memory run N=%d: %w", w.Name, n, err)
		}
		d.rtMem[n] = rres.MemStats.HighWaterData
	}

	h.data[w.Name] = d
	return d, nil
}

// loopOps returns the total traced loop ops of a run.
func loopOps(res gdsx.Result) int64 {
	var s int64
	for _, tr := range res.Traces {
		s += tr.Ops()
	}
	return s
}

// loopTime simulates the run's parallel loops at n threads and returns
// the summed makespan plus the aggregate breakdown.
func (h *Harness) loopTime(res gdsx.Result, n int) (int64, schedule.Breakdown) {
	var agg schedule.Breakdown
	for _, tr := range res.Traces {
		agg.Add(schedule.Simulate(tr, n, h.cfg.Model))
	}
	return agg.Time, agg
}

// totalTime simulates the whole program at n threads.
func (h *Harness) totalTime(res gdsx.Result, n int) (int64, error) {
	total, _, _, err := schedule.ProgramTime(res, n, h.cfg.Model)
	return total, err
}

var _ = interp.CatWork
var _ = rtpriv.DefaultModel
var _ = ddg.Flow
