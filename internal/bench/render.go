package bench

import (
	"fmt"
	"strings"
)

// Report bundles every regenerated table and figure.
type Report struct {
	Table4   []Table4Row
	Table5   []Table5Row
	Fig8     []Fig8Row
	Fig9     []Fig9Row
	Fig9HMUn float64
	Fig9HMOp float64
	Fig10    []Fig10Row
	Fig11    []Fig11Row
	Fig11HM  map[int]float64
	Fig12    []Fig12Row
	Fig13    []Fig13Row
	Fig14    []Fig14Row
	Threads  []int
}

// RunAll executes every experiment.
func (h *Harness) RunAll() (*Report, error) {
	r := &Report{Threads: h.cfg.Threads}
	var err error
	if r.Table4, err = h.Table4(); err != nil {
		return nil, err
	}
	if r.Table5, err = h.Table5(); err != nil {
		return nil, err
	}
	if r.Fig8, err = h.Figure8(); err != nil {
		return nil, err
	}
	if r.Fig9, r.Fig9HMUn, r.Fig9HMOp, err = h.Figure9(); err != nil {
		return nil, err
	}
	if r.Fig10, err = h.Figure10(); err != nil {
		return nil, err
	}
	if r.Fig11, r.Fig11HM, err = h.Figure11(); err != nil {
		return nil, err
	}
	if r.Fig12, err = h.Figure12(); err != nil {
		return nil, err
	}
	if r.Fig13, err = h.Figure13(); err != nil {
		return nil, err
	}
	if r.Fig14, err = h.Figure14(); err != nil {
		return nil, err
	}
	return r, nil
}

type table struct {
	sb     strings.Builder
	widths []int
	rows   [][]string
}

func (t *table) add(cells ...string) {
	for len(t.widths) < len(cells) {
		t.widths = append(t.widths, 0)
	}
	for i, c := range cells {
		if len(c) > t.widths[i] {
			t.widths[i] = len(c)
		}
	}
	t.rows = append(t.rows, cells)
}

func (t *table) String() string {
	var sb strings.Builder
	for r, row := range t.rows {
		for i, c := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", t.widths[i], c)
		}
		sb.WriteString("\n")
		if r == 0 {
			for i, w := range t.widths {
				if i > 0 {
					sb.WriteString("  ")
				}
				sb.WriteString(strings.Repeat("-", w))
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Render formats the full report as the text the paper's tables and
// figures carry.
func (r *Report) Render() string { return r.RenderPartial() }

// RenderPartial formats whichever experiments the report carries,
// skipping empty sections.
func (r *Report) RenderPartial() string {
	var sb strings.Builder
	sec := func(title string) {
		fmt.Fprintf(&sb, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
	}

	if len(r.Table4) > 0 {
		r.renderTable4(&sb, sec)
	}
	if len(r.Table5) > 0 {
		r.renderTable5(&sb, sec)
	}
	if len(r.Fig8) > 0 {
		r.renderFig8(&sb, sec)
	}
	if len(r.Fig9) > 0 {
		r.renderFig9(&sb, sec)
	}
	if len(r.Fig10) > 0 {
		r.renderFig10(&sb, sec)
	}
	if len(r.Fig11) > 0 {
		r.renderFig11(&sb, sec)
	}
	if len(r.Fig12) > 0 {
		r.renderFig12(&sb, sec)
	}
	if len(r.Fig13) > 0 {
		r.renderFig13(&sb, sec)
	}
	if len(r.Fig14) > 0 {
		r.renderFig14(&sb, sec)
	}
	return sb.String()
}

type secFn = func(string)

func (r *Report) renderTable4(sb *strings.Builder, sec secFn) {
	sec("Table 4: benchmark characteristics")
	t := &table{}
	t.add("benchmark", "suite", "LOC", "function", "level", "parallelism", "%time", "paper")
	for _, row := range r.Table4 {
		t.add(row.Name, row.Suite, fmt.Sprint(row.LOC), row.Func,
			fmt.Sprint(row.Level), row.Parallelism, f1(row.TimePct), f1(row.PaperPct))
	}
	sb.WriteString(t.String())
}

func (r *Report) renderTable5(sb *strings.Builder, sec secFn) {
	sec("Table 5: privatized dynamic data structures")
	t := &table{}
	t.add("benchmark", "#privatized", "paper")
	for _, row := range r.Table5 {
		t.add(row.Name, fmt.Sprint(row.Privatized), fmt.Sprint(row.Paper))
	}
	sb.WriteString(t.String())
}

func (r *Report) renderFig8(sb *strings.Builder, sec secFn) {
	sec("Figure 8: breakdown of dynamic memory accesses (%)")
	t := &table{}
	t.add("benchmark", "free of carried dep", "expandable", "with carried dep")
	for _, row := range r.Fig8 {
		t.add(row.Name, f1(row.Free), f1(row.Expandable), f1(row.Carried))
	}
	sb.WriteString(t.String())
}

func (r *Report) renderFig9(sb *strings.Builder, sec secFn) {
	sec("Figure 9: expansion overhead on one core (slowdown factor)")
	t := &table{}
	t.add("benchmark", "no optimizations (9a)", "with optimizations (9b)")
	for _, row := range r.Fig9 {
		t.add(row.Name, f2(row.Unopt), f2(row.Opt))
	}
	t.add("harmonic mean", f2(r.Fig9HMUn), f2(r.Fig9HMOp))
	sb.WriteString(t.String())
	sb.WriteString("paper: ~1.8x unoptimized, <1.05x optimized\n")
}

func (r *Report) renderFig10(sb *strings.Builder, sec secFn) {
	sec("Figure 10: single-core overhead, expansion vs runtime privatization")
	t := &table{}
	t.add("benchmark", "expansion", "runtime privatization")
	for _, row := range r.Fig10 {
		t.add(row.Name, f2(row.Expansion), f2(row.Runtime))
	}
	sb.WriteString(t.String())
}

func (r *Report) hdr() []string {
	hdr := []string{"benchmark"}
	for _, n := range r.Threads {
		hdr = append(hdr, fmt.Sprintf("%d thr", n))
	}
	return hdr
}

func (r *Report) renderFig11(sb *strings.Builder, sec secFn) {
	sec("Figure 11a: loop speedup of the expanded program")
	t := &table{}
	hdr := []string{"benchmark"}
	for _, n := range r.Threads {
		hdr = append(hdr, fmt.Sprintf("%d thr", n))
	}
	t.add(hdr...)
	for _, row := range r.Fig11 {
		cells := []string{row.Name}
		for _, n := range r.Threads {
			cells = append(cells, f2(row.Loop[n]))
		}
		t.add(cells...)
	}
	sb.WriteString(t.String())

	sec("Figure 11b: total program speedup of the expanded program")
	t = &table{}
	t.add(hdr...)
	for _, row := range r.Fig11 {
		cells := []string{row.Name}
		for _, n := range r.Threads {
			cells = append(cells, f2(row.Total[n]))
		}
		t.add(cells...)
	}
	hm := []string{"harmonic mean"}
	for _, n := range r.Threads {
		hm = append(hm, f2(r.Fig11HM[n]))
	}
	t.add(hm...)
	sb.WriteString(t.String())
	sb.WriteString("paper harmonic means: 1.93 at 4 cores, 2.24 at 8 cores\n")
}

func (r *Report) renderFig12(sb *strings.Builder, sec secFn) {
	sec(fmt.Sprintf("Figure 12: loop execution breakdown at %d threads (%%)", r.Fig12[0].Threads))
	t := &table{}
	t.add("benchmark", "work", "sync/sched", "wait (do_wait/cpu_relax)")
	for _, row := range r.Fig12 {
		t.add(row.Name, f1(row.Work), f1(row.Sync), f1(row.Wait))
	}
	sb.WriteString(t.String())
}

func (r *Report) renderFig13(sb *strings.Builder, sec secFn) {
	sec("Figure 13: loop speedup under runtime privatization")
	t := &table{}
	t.add(r.hdr()...)
	for _, row := range r.Fig13 {
		cells := []string{row.Name}
		for _, n := range r.Threads {
			cells = append(cells, f2(row.Speedup[n]))
		}
		t.add(cells...)
	}
	sb.WriteString(t.String())
	sb.WriteString("paper: nearly no speedup for most benchmarks\n")
}

func (r *Report) renderFig14(sb *strings.Builder, sec secFn) {
	sec("Figure 14: memory use as a multiple of the sequential program")
	t := &table{}
	hdr2 := []string{"benchmark"}
	for _, n := range r.Threads {
		hdr2 = append(hdr2, fmt.Sprintf("exp %dT", n))
	}
	for _, n := range r.Threads {
		hdr2 = append(hdr2, fmt.Sprintf("rtp %dT", n))
	}
	t.add(hdr2...)
	for _, row := range r.Fig14 {
		cells := []string{row.Name}
		for _, n := range r.Threads {
			cells = append(cells, f2(row.Expansion[n]))
		}
		for _, n := range r.Threads {
			cells = append(cells, f2(row.Runtime[n]))
		}
		t.add(cells...)
	}
	sb.WriteString(t.String())
}
