package bench

import (
	"testing"

	"gdsx/internal/workloads"
)

func TestAblationLayoutLocality(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = workloads.ProfileScale
	h := New(cfg)
	rows, err := h.AblationLayout()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	bonded, inter := rows[0], rows[1]
	if bonded.Layout != "bonded" || inter.Layout != "interleaved" {
		t.Fatalf("order: %+v", rows)
	}
	// The interleaved layout must touch several times more cache lines
	// (the paper's locality argument for bonded mode).
	if inter.CacheMisses < bonded.CacheMisses*3 {
		t.Fatalf("locality gap missing: bonded=%d interleaved=%d",
			bonded.CacheMisses, inter.CacheMisses)
	}
	t.Logf("bonded misses=%d, interleaved misses=%d (%.1fx)",
		bonded.CacheMisses, inter.CacheMisses,
		float64(inter.CacheMisses)/float64(bonded.CacheMisses))
}
