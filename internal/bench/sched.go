package bench

// Scheduler scaling: how the two DOALL dispatch policies — static
// chunking and work stealing — scale with simulated core count. The
// numbers come from the deterministic schedule simulator over the
// workloads' traced per-iteration costs, so the report is identical on
// any host and safe to check in (BENCH_sched.json). DOACROSS loops
// always use the ordered chunk-1 pipeline regardless of policy; a
// DOACROSS-dominated workload (dijkstra) is included deliberately so
// the report shows where stealing does not apply.

import (
	"fmt"
	"sort"
	"strings"

	"gdsx/internal/interp"
	"gdsx/internal/schedule"
	"gdsx/internal/workloads"
)

// SchedWorkloads are the workloads the scaling report measures: md5 is
// DOALL-dominated (the policy comparison is meaningful), dijkstra is
// DOACROSS-dominated (both policies degenerate to the ordered
// pipeline, included as the honest negative control).
var SchedWorkloads = []string{"dijkstra", "md5"}

// SchedThreads are the simulated core counts of the scaling sweep.
var SchedThreads = []int{1, 2, 4, 8, 16}

// SchedRow is one workload's loop-speedup curves. Speedups are the
// traced sequential loop ops divided by the simulated parallel loop
// makespan, as in Figure 11. The first pair uses the full machine
// model, where both policies saturate at the memory-bandwidth bound;
// the NoBW pair lifts the bandwidth bounds (MemBandwidth and
// SharedCacheBW zero) to isolate what the dispatch policy itself
// costs — near-linear scaling to 16 threads must show up there or the
// scheduler is the bottleneck.
type SchedRow struct {
	Workload     string          `json:"workload"`
	Kinds        string          `json:"kinds"` // parallel-loop kinds present
	Static       map[int]float64 `json:"static"`
	Stealing     map[int]float64 `json:"stealing"`
	StaticNoBW   map[int]float64 `json:"static_nobw"`
	StealingNoBW map[int]float64 `json:"stealing_nobw"`
}

// SchedReport is the full scaling comparison, serialized to
// BENCH_sched.json by gdsxbench -sched.
type SchedReport struct {
	Scale   string     `json:"scale"`
	Threads []int      `json:"threads"`
	Rows    []SchedRow `json:"rows"`
}

// SchedScaling simulates every SchedWorkloads loop trace at each
// SchedThreads count under PolicyStatic and PolicyStealing.
func (h *Harness) SchedScaling() (*SchedReport, error) {
	rep := &SchedReport{Scale: scaleName(h.cfg.Scale), Threads: SchedThreads}
	models := [4]schedule.Model{h.cfg.Model, h.cfg.Model, h.cfg.Model, h.cfg.Model}
	models[1].Policy = schedule.PolicyStealing
	models[2].MemBandwidth, models[2].SharedCacheBW = 0, 0
	models[3].MemBandwidth, models[3].SharedCacheBW = 0, 0
	models[3].Policy = schedule.PolicyStealing
	for _, name := range SchedWorkloads {
		d, err := h.Data(workloads.ByName(name))
		if err != nil {
			return nil, err
		}
		row := SchedRow{Workload: name, Kinds: traceKinds(d.opt.Traces)}
		curves := [4]*map[int]float64{&row.Static, &row.Stealing, &row.StaticNoBW, &row.StealingNoBW}
		nativeLoop := float64(loopOps(d.native))
		for i, m := range models {
			c := map[int]float64{}
			for _, n := range SchedThreads {
				var agg schedule.Breakdown
				for _, tr := range d.opt.Traces {
					agg.Add(schedule.Simulate(tr, n, m))
				}
				c[n] = nativeLoop / float64(agg.Time)
			}
			*curves[i] = c
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// traceKinds summarizes the distinct parallel-loop kinds of a run's
// traces, e.g. "DOALL" or "DOALL+DOACROSS".
func traceKinds(traces []*interp.LoopTrace) string {
	seen := map[string]bool{}
	for _, tr := range traces {
		seen[tr.Kind.String()] = true
	}
	kinds := make([]string, 0, len(seen))
	for k := range seen {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return strings.Join(kinds, "+")
}

// Render formats the scaling report as a text table.
func (r *SchedReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DOALL scheduler scaling (simulated loop speedup, %s scale)\n", r.Scale)
	fmt.Fprintf(&b, "%-14s %-16s %-13s", "workload", "kinds", "policy")
	for _, n := range r.Threads {
		fmt.Fprintf(&b, " %7s", fmt.Sprintf("n=%d", n))
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		for _, pol := range []struct {
			name string
			s    map[int]float64
		}{
			{"static", row.Static}, {"stealing", row.Stealing},
			{"static/nobw", row.StaticNoBW}, {"stealing/nobw", row.StealingNoBW},
		} {
			fmt.Fprintf(&b, "%-14s %-16s %-13s", row.Workload, row.Kinds, pol.name)
			for _, n := range r.Threads {
				fmt.Fprintf(&b, " %6.2fx", pol.s[n])
			}
			b.WriteString("\n")
		}
	}
	b.WriteString("(nobw lifts the model's memory-bandwidth bounds to isolate dispatch cost;\n" +
		" DOACROSS loops use the ordered chunk-1 pipeline under either policy.)\n")
	return b.String()
}
