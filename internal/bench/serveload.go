package bench

// Serve-load: a closed-loop load harness for the gdsxd service layer.
// Unlike the other bench modes, the object under test is not a kernel
// but the whole request path — admission, cache, pooled memory, the
// shed ladder, recovered execution — so the harness drives an
// in-process HTTP server with concurrent clients and reports latency
// quantiles, throughput, shed rate and cache hit rate per scenario.
// Latencies are host wall-clock: absolute numbers vary by machine, and
// the CI gate compares quick runs against the checked-in
// BENCH_serve.json — p50 with a 10% allowance (stable under load), p99
// with a 50% allowance (a max-of-48-samples statistic whose run-to-run
// noise exceeds any tighter threshold; what it must catch is the
// latency multiplying).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"gdsx/internal/obs"
	"gdsx/internal/serve"
	"gdsx/internal/serve/chaos"
)

// serveKernel is the request workload: enough parallel compute to make
// admission contention real, small enough that a scenario finishes in
// seconds. The N declaration arrives via the request's input preamble,
// so scenarios can vary the cache key without editing the kernel.
const serveKernel = `
int main() {
	long *out = (long*)malloc(N * 8);
	int i;
	parallel for (i = 0; i < N; i++) {
		long acc = 0;
		int j;
		for (j = 0; j < 3000; j++) { acc = acc + (long)i * j; }
		out[i] = acc;
	}
	long s = 0;
	for (i = 0; i < N; i++) { s = s + out[i]; }
	print_long(s);
	print_char('\n');
	return 0;
}
`

// ServeLoadRow is one scenario's aggregate measurement.
type ServeLoadRow struct {
	Scenario     string  `json:"scenario"`
	Clients      int     `json:"clients"`
	Requests     int64   `json:"requests"`
	OK           int64   `json:"ok"`
	Shed         int64   `json:"shed"`   // 429s: queue_full + rate_limited
	Failed       int64   `json:"failed"` // structured non-200, non-429
	ReqPerSec    float64 `json:"req_per_sec"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	ShedRate     float64 `json:"shed_rate"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// ServeLoadReport is the full serve-load measurement, serialized to
// BENCH_serve.json by gdsxbench -serve-load.
type ServeLoadReport struct {
	GoVersion string         `json:"go_version"`
	Rows      []ServeLoadRow `json:"rows"`
	// P99Geomean aggregates the scenarios' p99 latencies (ms).
	P99Geomean float64 `json:"p99_geomean_ms"`
	// GoroutineDelta is runtime.NumGoroutine growth measured after the
	// last scenario drained — the no-leak acceptance check (≤ 2).
	GoroutineDelta int `json:"goroutine_delta"`
}

// GeomeanOver recomputes the geomean p99 over the named scenarios,
// for gating a quick run against a full checked-in report. Returns
// false if any name has no row.
func (r *ServeLoadReport) GeomeanOver(names []string) (float64, bool) {
	return r.geomeanOver(names, func(row *ServeLoadRow) float64 { return row.P99Ms })
}

// GeomeanP50Over is GeomeanOver for the median — the stable statistic
// the CI gate holds to its tight threshold.
func (r *ServeLoadReport) GeomeanP50Over(names []string) (float64, bool) {
	return r.geomeanOver(names, func(row *ServeLoadRow) float64 { return row.P50Ms })
}

func (r *ServeLoadReport) geomeanOver(names []string, stat func(*ServeLoadRow) float64) (float64, bool) {
	logSum := 0.0
	for _, name := range names {
		found := false
		for i := range r.Rows {
			if r.Rows[i].Scenario == name {
				logSum += math.Log(stat(&r.Rows[i]))
				found = true
				break
			}
		}
		if !found {
			return 0, false
		}
	}
	return math.Exp(logSum / float64(len(names))), true
}

// serveScenario describes one load pattern.
type serveScenario struct {
	name      string
	cfg       serve.Config
	chaos     *chaos.Config // nil: no fault injection
	clients   int
	perClient int
	request   func(client, seq int) serve.Request
}

func serveScenarios(quick bool) []serveScenario {
	reqs := func(full int) int {
		if quick {
			return full / 2
		}
		return full
	}
	steadyReq := func(client, seq int) serve.Request {
		return serve.Request{Source: serveKernel, Input: "int N = 48;"}
	}
	mixedReq := func(client, seq int) serve.Request {
		r := serve.Request{Source: serveKernel, Input: fmt.Sprintf("int N = %d;", 32+8*(seq%4))}
		if seq%5 == 4 {
			r.Options.Guard = true
		}
		return r
	}
	scenarios := []serveScenario{
		{
			name:      "steady",
			cfg:       serve.Config{MaxConcurrent: 4, QueueDepth: 16, Rate: serve.RateLimit{RPS: -1}},
			clients:   4,
			perClient: reqs(24),
			request:   steadyReq,
		},
	}
	if !quick {
		// Quick keeps only the two gate scenarios (steady, burst): mixed
		// and chaos latencies vary too much for a CI threshold.
		scenarios = append(scenarios, serveScenario{
			name:      "mixed",
			cfg:       serve.Config{MaxConcurrent: 4, QueueDepth: 16, Rate: serve.RateLimit{RPS: -1}},
			clients:   6,
			perClient: reqs(16),
			request:   mixedReq,
		})
	}
	scenarios = append(scenarios,
		serveScenario{
			name: "burst",
			// Capacity 2+2 against 8 closed-loop clients: the queue must
			// overflow, so the shed path (429 + Retry-After) is on the
			// measured path.
			cfg:       serve.Config{MaxConcurrent: 2, QueueDepth: 2, Rate: serve.RateLimit{RPS: -1}},
			clients:   8,
			perClient: reqs(12),
			request:   steadyReq,
		},
	)
	if !quick {
		scenarios = append(scenarios, serveScenario{
			name:      "chaos",
			cfg:       serve.Config{MaxConcurrent: 4, QueueDepth: 8, Rate: serve.RateLimit{RPS: -1}},
			chaos:     &chaos.Config{PanicEvery: 6, DelayEvery: 9, Delay: 5 * time.Millisecond, Seed: 7},
			clients:   6,
			perClient: 12,
			request: func(client, seq int) serve.Request {
				switch seq % 4 {
				case 0:
					return serve.Request{Source: serveKernel, Input: "int N = 48;"}
				case 1:
					return serve.Request{Source: serveKernel, Input: "int N = 40;",
						Options: serve.Options{Guard: true, FaultRollbackEvery: 2}}
				case 2:
					return serve.Request{Source: serveKernel, Input: "int N = 48;",
						Options: serve.Options{MemLimit: 128 << 10}}
				default:
					return serve.Request{Source: serveKernel, Input: "int N = 56;"}
				}
			},
		})
	}
	return scenarios
}

// ServeLoad drives every scenario against an in-process server and
// aggregates the results. quick halves the request counts and skips
// the chaos scenario (the CI gate subset).
func ServeLoad(quick bool) (*ServeLoadReport, error) {
	before := runtime.NumGoroutine()
	rep := &ServeLoadReport{GoVersion: runtime.Version()}
	logSum := 0.0
	for _, sc := range serveScenarios(quick) {
		row, err := runServeScenario(sc)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.name, err)
		}
		rep.Rows = append(rep.Rows, *row)
		logSum += math.Log(row.P99Ms)
	}
	rep.P99Geomean = math.Exp(logSum / float64(len(rep.Rows)))

	// No-leak acceptance check: once every scenario's server has shut
	// down and traffic drained, goroutine count must return to baseline.
	// Idle keep-alive connections hold goroutines on both sides and are
	// not leaks, so shed them while polling (the load clients share
	// http.DefaultTransport).
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		http.DefaultClient.CloseIdleConnections()
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	rep.GoroutineDelta = runtime.NumGoroutine() - before
	if rep.GoroutineDelta > 2 {
		return nil, fmt.Errorf("goroutine leak after drain: %d -> %d",
			before, before+rep.GoroutineDelta)
	}
	return rep, nil
}

func runServeScenario(sc serveScenario) (*ServeLoadRow, error) {
	// Head-sampled tracing attaches a request observer, which disables
	// scalar promotion for that run — a deliberately slower 1-in-N path.
	// With closed-loop p99 sitting at the max sample, leaving sampling
	// on would make the gate measure "how slow was the traced request"
	// instead of serving latency. The obs serve tier gates that overhead
	// separately; this benchmark measures the untraced path.
	sc.cfg.TraceSample = -1
	srv := serve.New(sc.cfg)
	var mws []func(http.Handler) http.Handler
	if sc.chaos != nil {
		mws = append(mws, chaos.Middleware(*sc.chaos))
	}
	ts := httptest.NewServer(srv.Handler(mws...))
	defer ts.Close()

	// Warm the transform cache outside the measured window: one pass
	// over the request generator's cycle (lcm of its modulo patterns)
	// builds every distinct (source, guard) key, so the measured p99 is
	// steady-state serving latency rather than the wall-clock of the
	// first single-flight build — which is what makes the CI gate
	// stable. A regression that loses the cache path still multiplies
	// p99 by the build cost. Warmup failures (e.g. chaos panics) are
	// ignored; the build still happened.
	for seq := 0; seq < 20; seq++ {
		body, err := json.Marshal(sc.request(0, seq))
		if err != nil {
			return nil, err
		}
		resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}

	// One short unmeasured pass at full concurrency: the serial warmup
	// above leaves the process cold for concurrent serving (GC heap not
	// yet sized for N in-flight arenas, scheduler and CPU clocks not
	// ramped), and those first slow requests weigh twice as much in a
	// quick run's median as in a full run's — which showed up as a
	// systematic quick-vs-baseline gap at the gate. Shed 429s are fine
	// here; the point is concurrent pressure, not completions.
	var warm sync.WaitGroup
	for c := 0; c < sc.clients; c++ {
		warm.Add(1)
		go func(client int) {
			defer warm.Done()
			for seq := 0; seq < 3; seq++ {
				body, err := json.Marshal(sc.request(client, seq))
				if err != nil {
					return
				}
				resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			}
		}(c)
	}
	warm.Wait()

	row := &ServeLoadRow{Scenario: sc.name, Clients: sc.clients}
	// Latency quantiles come from the same obs.Histogram/Quantile path
	// the service's /metrics reports through, so BENCH_serve.json and a
	// live scrape measure with one implementation. The power-of-two
	// buckets quantize (microsecond observations, ~±25% inside a
	// bucket); the Min/Max clamp and the CI gate's wide allowance
	// absorb that.
	hist := &obs.Histogram{}
	var (
		mu   sync.Mutex
		hits int64
		wg   sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < sc.clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			hc := &http.Client{Timeout: 60 * time.Second}
			for seq := 0; seq < sc.perClient; seq++ {
				body, err := json.Marshal(sc.request(client, seq))
				if err != nil {
					return
				}
				t0 := time.Now()
				resp, err := hc.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
				lat := time.Since(t0)
				mu.Lock()
				row.Requests++
				if err != nil {
					row.Failed++
					mu.Unlock()
					continue
				}
				switch {
				case resp.StatusCode == http.StatusOK:
					row.OK++
					hist.Observe(lat.Microseconds())
					var r serve.Response
					if json.NewDecoder(resp.Body).Decode(&r) == nil && r.CacheHit {
						hits++
					}
				case resp.StatusCode == http.StatusTooManyRequests:
					row.Shed++
				default:
					row.Failed++
				}
				mu.Unlock()
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if row.OK == 0 {
		return nil, fmt.Errorf("no request succeeded (%d shed, %d failed)", row.Shed, row.Failed)
	}
	row.P50Ms = hist.Quantile(0.50) / 1e3
	row.P99Ms = hist.Quantile(0.99) / 1e3
	row.ReqPerSec = float64(row.Requests) / elapsed.Seconds()
	row.ShedRate = float64(row.Shed) / float64(row.Requests)
	row.CacheHitRate = float64(hits) / float64(row.OK)
	return row, nil
}

const (
	// serveObsReqs is one measured batch: sequential cached requests,
	// so the batch time is dominated by the request path itself rather
	// than queueing noise.
	serveObsReqs = 24
	serveObsReps = 5
)

// serveObsTier measures the service layer's leave-on observability
// overhead for the ObsReport: median batch time against a DisableObs
// server vs. the default configuration (registry instruments on every
// request, head-sampled tracing at the default 1-in-8, trace
// retention). Batches alternate order across repetitions so drift in
// host load lands on both configurations evenly.
func serveObsTier(rep *ObsReport) error {
	mkServer := func(disable bool) *httptest.Server {
		return httptest.NewServer(serve.New(serve.Config{
			MaxConcurrent: 2, QueueDepth: 64,
			Rate:       serve.RateLimit{RPS: -1},
			DisableObs: disable,
		}).Handler())
	}
	base, obsd := mkServer(true), mkServer(false)
	defer base.Close()
	defer obsd.Close()

	body, err := json.Marshal(serve.Request{Source: serveKernel, Input: "int N = 32;"})
	if err != nil {
		return err
	}
	batch := func(url string) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < serveObsReqs; i++ {
			resp, err := http.Post(url+"/run", "application/json", bytes.NewReader(body))
			if err != nil {
				return 0, err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return 0, fmt.Errorf("request returned %d", resp.StatusCode)
			}
		}
		return time.Since(start), nil
	}

	// Warmup builds each server's cache entry and brings the process to
	// steady state, as in ObsOverhead.
	for _, url := range []string{base.URL, obsd.URL} {
		if _, err := batch(url); err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
	}
	var baseSamples, obsSamples []time.Duration
	for i := 0; i < serveObsReps; i++ {
		order := []*httptest.Server{base, obsd}
		if i%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		for _, ts := range order {
			d, err := batch(ts.URL)
			if err != nil {
				return err
			}
			if ts == base {
				baseSamples = append(baseSamples, d)
			} else {
				obsSamples = append(obsSamples, d)
			}
		}
	}
	rep.ServeBaseNS = median(baseSamples).Nanoseconds()
	rep.ServeObsNS = median(obsSamples).Nanoseconds()
	rep.ServeOverhead = float64(rep.ServeObsNS)/float64(rep.ServeBaseNS) - 1
	return nil
}

// Render formats the report as a text table.
func (r *ServeLoadReport) Render() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "\nServe load (closed loop, in-process server)\n")
	fmt.Fprintf(&b, "%-8s %7s %8s %6s %5s %7s %9s %8s %8s %6s %6s\n",
		"scenario", "clients", "requests", "ok", "shed", "failed", "req/s", "p50(ms)", "p99(ms)", "shed%", "hit%")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %7d %8d %6d %5d %7d %9.1f %8.1f %8.1f %5.1f%% %5.1f%%\n",
			row.Scenario, row.Clients, row.Requests, row.OK, row.Shed, row.Failed,
			row.ReqPerSec, row.P50Ms, row.P99Ms, 100*row.ShedRate, 100*row.CacheHitRate)
	}
	fmt.Fprintf(&b, "geomean p99: %.1f ms\n", r.P99Geomean)
	return b.String()
}
