package bench

// Observability overhead: like the engine comparison, this measures
// host wall-clock time — the simulated operation counts are identical
// with and without an Observer attached (observability must never
// change what the program does). Each workload's expanded program runs
// at 4 simulated threads in four configurations: no observer (the
// nil-check fast path), the standard observer (event tracer + metrics
// registry, per-region cost only — the leave-on tier), per-iteration
// trace spans on top (two clock reads per iteration, what `gdsx
// pipeline -trace` enables), and the hot-site profiler on top of that,
// which routes every sited memory access through the interpreter's
// hook path — a cost class shared with the guard monitor, not a fixed
// tax of tracing.

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"gdsx"
	"gdsx/internal/workloads"
)

// ObsRow is one workload's observability-overhead measurement.
type ObsRow struct {
	Workload string `json:"workload"`
	// BaseNS is the median run with no observer attached.
	BaseNS int64 `json:"base_ns"`
	// ObsNS is the median run with the standard observer (event tracer
	// + metrics registry, no per-iteration instrumentation).
	ObsNS int64 `json:"obs_ns"`
	// SpansNS adds per-iteration trace spans (0 when skipped).
	SpansNS int64 `json:"spans_ns,omitempty"`
	// HotNS adds the per-access hot-site profiler (0 when skipped).
	HotNS int64 `json:"hot_ns,omitempty"`
	// Overhead is ObsNS/BaseNS - 1.
	Overhead float64 `json:"overhead"`
	// SpansOverhead is SpansNS/BaseNS - 1 (0 when skipped).
	SpansOverhead float64 `json:"spans_overhead,omitempty"`
	// HotOverhead is HotNS/BaseNS - 1 (0 when skipped).
	HotOverhead float64 `json:"hot_overhead,omitempty"`
}

// ObsReport is the full overhead measurement, serialized to
// BENCH_obs.json by gdsxbench -obs.
type ObsReport struct {
	GoVersion string   `json:"go_version"`
	Scale     string   `json:"scale"`
	Threads   int      `json:"threads"`
	Reps      int      `json:"reps"`
	Quick     bool     `json:"quick,omitempty"`
	Rows      []ObsRow `json:"rows"`
	// GeomeanOverhead is the geometric mean of the per-workload
	// obs/base ratios, minus one.
	GeomeanOverhead float64 `json:"geomean_overhead"`
	// GeomeanSpansOverhead covers the iteration-span tier (0 when
	// skipped).
	GeomeanSpansOverhead float64 `json:"geomean_spans_overhead,omitempty"`
	// GeomeanHotOverhead covers the hot-profiler tier (0 when skipped).
	GeomeanHotOverhead float64 `json:"geomean_hot_overhead,omitempty"`
	// ServeBaseNS/ServeObsNS are the median wall-clock times of one
	// request batch against a DisableObs server vs. the default
	// configuration (registry + head-sampled tracing + trace
	// retention), and ServeOverhead their ratio minus one — the
	// service-layer leave-on observability tax the CI gate bounds.
	ServeBaseNS   int64   `json:"serve_base_ns,omitempty"`
	ServeObsNS    int64   `json:"serve_obs_ns,omitempty"`
	ServeOverhead float64 `json:"serve_overhead,omitempty"`
}

const (
	obsReps    = 5
	obsThreads = 4
	// obsWarmups is the number of untimed steady-state runs before
	// measurement starts (see ObsOverhead).
	obsWarmups = 2
	// obsQuickWorkloads bounds the -quick smoke run (CI gate).
	obsQuickWorkloads = 3
)

// obsConfig names one observer configuration under measurement.
type obsConfig int

const (
	obsOff   obsConfig = iota // nil observer: the disabled fast path
	obsOn                     // tracer + metrics (the leave-on tier)
	obsSpans                  // obsOn plus per-iteration trace spans
	obsHot                    // obsSpans plus the per-access hot-site profiler
)

// timeObs runs the expanded program once under the given observer
// configuration and returns the wall-clock duration. A fresh Observer
// is built per run — reusing one would make later runs pay for earlier
// runs' trace buffers.
func timeObs(exp *gdsx.Program, cfg obsConfig, memSize int64, eng gdsx.Engine) (time.Duration, error) {
	var o *gdsx.Observer
	switch cfg {
	case obsOn:
		o = gdsx.NewObserver(false)
	case obsSpans:
		o = gdsx.NewObserver(false)
		o.IterSpans = true
	case obsHot:
		o = gdsx.NewObserver(true)
		o.IterSpans = true
	}
	start := time.Now()
	_, err := exp.Run(gdsx.RunOptions{
		Threads: obsThreads, MemSize: memSize, Engine: eng, Obs: o,
	})
	return time.Since(start), err
}

// ObsOverhead measures the observability tax on every workload's
// expanded parallel run. With quick set, only the first few workloads
// run and the expensive hot-profiler configuration is skipped — the CI
// smoke gate uses this variant.
func (h *Harness) ObsOverhead(quick bool) (*ObsReport, error) {
	rep := &ObsReport{
		GoVersion: runtime.Version(),
		Scale:     scaleName(h.cfg.Scale),
		Threads:   obsThreads,
		Reps:      obsReps,
		Quick:     quick,
	}
	configs := []obsConfig{obsOff, obsOn, obsSpans, obsHot}
	wls := workloads.All()
	if quick {
		configs = configs[:2]
		if len(wls) > obsQuickWorkloads {
			wls = wls[:obsQuickWorkloads]
		}
	}
	logSum, logSumSpans, logSumHot := 0.0, 0.0, 0.0
	for _, w := range wls {
		prog, err := gdsx.Compile(w.Name+".c", w.Source(h.cfg.Scale))
		if err != nil {
			return nil, fmt.Errorf("%s: compile: %w", w.Name, err)
		}
		topts := gdsx.TransformOptions{}
		if h.cfg.Scale != workloads.ProfileScale && h.cfg.Scale != workloads.Test {
			topts.ProfileSource = w.Source(workloads.ProfileScale)
		}
		tr, err := gdsx.Transform(prog, topts)
		if err != nil {
			return nil, fmt.Errorf("%s: transform: %w", w.Name, err)
		}
		exp, err := gdsx.Compile(w.Name+" (expanded).c", tr.Source)
		if err != nil {
			return nil, fmt.Errorf("%s: compile expanded: %w", w.Name, err)
		}
		// The first few runs of a process execute on a fresh heap and can
		// be several times faster than steady state (the 256 MiB simulated
		// memory dominates the Go heap; reruns pay GC and memclr debt), so
		// a couple of untimed warmups bring the process to steady state
		// first. The configuration order then rotates each repetition and the
		// per-config median is reported — a min would hand any residual
		// fresh-heap outlier to whichever configuration happened to run
		// early.
		for i := 0; i < obsWarmups; i++ {
			if _, err := timeObs(exp, obsOff, h.cfg.MemSize, h.cfg.Engine); err != nil {
				return nil, fmt.Errorf("%s (warmup): %w", w.Name, err)
			}
		}
		samples := map[obsConfig][]time.Duration{}
		for i := 0; i < obsReps; i++ {
			for j := range configs {
				c := configs[(i+j)%len(configs)]
				d, err := timeObs(exp, c, h.cfg.MemSize, h.cfg.Engine)
				if err != nil {
					return nil, fmt.Errorf("%s (config %d): %w", w.Name, c, err)
				}
				samples[c] = append(samples[c], d)
			}
		}
		row := ObsRow{
			Workload: w.Name,
			BaseNS:   median(samples[obsOff]).Nanoseconds(),
			ObsNS:    median(samples[obsOn]).Nanoseconds(),
		}
		row.Overhead = float64(row.ObsNS)/float64(row.BaseNS) - 1
		logSum += math.Log(float64(row.ObsNS) / float64(row.BaseNS))
		if !quick {
			row.SpansNS = median(samples[obsSpans]).Nanoseconds()
			row.SpansOverhead = float64(row.SpansNS)/float64(row.BaseNS) - 1
			logSumSpans += math.Log(float64(row.SpansNS) / float64(row.BaseNS))
			row.HotNS = median(samples[obsHot]).Nanoseconds()
			row.HotOverhead = float64(row.HotNS)/float64(row.BaseNS) - 1
			logSumHot += math.Log(float64(row.HotNS) / float64(row.BaseNS))
		}
		rep.Rows = append(rep.Rows, row)
	}
	n := float64(len(rep.Rows))
	rep.GeomeanOverhead = math.Exp(logSum/n) - 1
	if !quick {
		rep.GeomeanSpansOverhead = math.Exp(logSumSpans/n) - 1
		rep.GeomeanHotOverhead = math.Exp(logSumHot/n) - 1
	}
	if err := serveObsTier(rep); err != nil {
		return nil, fmt.Errorf("serve tier: %w", err)
	}
	return rep, nil
}

// median returns the middle sample (sorted); the mean of the two
// middles for even counts.
func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Render formats the overhead report as a text table.
func (r *ObsReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Observability overhead (wall clock, %s scale, %d threads, median of %d, %s)\n",
		r.Scale, r.Threads, r.Reps, r.GoVersion)
	fmt.Fprintf(&b, "%-16s %12s %12s %9s %9s %9s\n",
		"workload", "base", "obs", "ovhd", "+spans", "+hot")
	pct := func(ns int64, ov float64) string {
		if ns == 0 {
			return "-"
		}
		return fmt.Sprintf("%+.1f%%", ov*100)
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %12v %12v %8.1f%% %9s %9s\n", row.Workload,
			time.Duration(row.BaseNS).Round(time.Microsecond),
			time.Duration(row.ObsNS).Round(time.Microsecond),
			row.Overhead*100,
			pct(row.SpansNS, row.SpansOverhead),
			pct(row.HotNS, row.HotOverhead))
	}
	fmt.Fprintf(&b, "%-16s %12s %12s %8.1f%%", "geomean", "", "", r.GeomeanOverhead*100)
	if !r.Quick {
		fmt.Fprintf(&b, " %8.1f%% %8.1f%%", r.GeomeanSpansOverhead*100, r.GeomeanHotOverhead*100)
	}
	b.WriteString("\n")
	if r.ServeObsNS > 0 {
		fmt.Fprintf(&b, "%-16s %12v %12v %8.1f%%\n", "serve",
			time.Duration(r.ServeBaseNS).Round(time.Microsecond),
			time.Duration(r.ServeObsNS).Round(time.Microsecond),
			r.ServeOverhead*100)
	}
	return b.String()
}
