package bench

// Engine comparison: unlike every other experiment in this package,
// which reports deterministic simulated operation counts, this one
// measures host wall-clock time — the only quantity the choice of
// execution engine can change. Both engines produce byte-identical
// output and identical counters (see the cross-validation test at the
// repository root), so the comparison runs each workload under each
// engine and reports the speedup of the closure-compiling engine over
// the tree-walking reference.

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"gdsx"
	"gdsx/internal/workloads"
)

// EngineRow is one workload's tree-vs-compiled wall-clock measurement.
type EngineRow struct {
	Workload   string  `json:"workload"`
	TreeNS     int64   `json:"tree_ns"`
	CompiledNS int64   `json:"compiled_ns"`
	Speedup    float64 `json:"speedup"`
}

// EngineReport is the full engine comparison, serialized to
// BENCH_engine.json by gdsxbench -bench-engines.
type EngineReport struct {
	GoVersion string      `json:"go_version"`
	Scale     string      `json:"scale"`
	Threads   int         `json:"threads"`
	Reps      int         `json:"reps"`
	Rows      []EngineRow `json:"rows"`
	Geomean   float64     `json:"geomean_speedup"`
}

// engineReps is how many times each (workload, engine) pair runs; the
// minimum wall-clock of the repetitions is reported, which discards
// one-off scheduler and GC noise.
const engineReps = 3

// timeEngine runs the program once under eng and returns the
// wall-clock duration. Machine construction is included: closure
// compilation is part of what the compiled engine pays per run.
func timeEngine(prog *gdsx.Program, eng gdsx.Engine, memSize int64) (time.Duration, error) {
	start := time.Now()
	_, err := prog.Run(gdsx.RunOptions{Threads: 1, MemSize: memSize, Engine: eng})
	return time.Since(start), err
}

// EngineComparison measures every workload's native program under both
// engines at the harness scale, single-threaded so the measurement is
// pure dispatch cost rather than parallel-runtime behavior.
func (h *Harness) EngineComparison() (*EngineReport, error) {
	rep := &EngineReport{
		GoVersion: runtime.Version(),
		Scale:     scaleName(h.cfg.Scale),
		Threads:   1,
		Reps:      engineReps,
	}
	logSum := 0.0
	for _, w := range workloads.All() {
		prog, err := gdsx.Compile(w.Name+".c", w.Source(h.cfg.Scale))
		if err != nil {
			return nil, fmt.Errorf("%s: compile: %w", w.Name, err)
		}
		row := EngineRow{Workload: w.Name}
		// One untimed run dirties the Go heap (the simulated memory's
		// first allocation gets pre-zeroed pages from the OS; reruns pay
		// a memclr), then the engines alternate within each repetition —
		// otherwise whichever engine runs first is systematically
		// cheaper and the comparison is biased.
		if _, err := timeEngine(prog, gdsx.EngineCompiled, h.cfg.MemSize); err != nil {
			return nil, fmt.Errorf("%s (warmup): %w", w.Name, err)
		}
		bestTree := time.Duration(math.MaxInt64)
		bestComp := time.Duration(math.MaxInt64)
		for i := 0; i < engineReps; i++ {
			for _, eng := range []gdsx.Engine{gdsx.EngineTree, gdsx.EngineCompiled} {
				d, err := timeEngine(prog, eng, h.cfg.MemSize)
				if err != nil {
					return nil, fmt.Errorf("%s (%v): %w", w.Name, eng, err)
				}
				if eng == gdsx.EngineTree && d < bestTree {
					bestTree = d
				} else if eng == gdsx.EngineCompiled && d < bestComp {
					bestComp = d
				}
			}
		}
		row.TreeNS = bestTree.Nanoseconds()
		row.CompiledNS = bestComp.Nanoseconds()
		row.Speedup = float64(row.TreeNS) / float64(row.CompiledNS)
		logSum += math.Log(row.Speedup)
		rep.Rows = append(rep.Rows, row)
	}
	rep.Geomean = math.Exp(logSum / float64(len(rep.Rows)))
	return rep, nil
}

// scaleName names a workload scale for reports.
func scaleName(s workloads.Scale) string {
	switch s {
	case workloads.Test:
		return "test"
	case workloads.ProfileScale:
		return "profile"
	case workloads.BenchScale:
		return "bench"
	}
	return fmt.Sprintf("scale(%d)", int(s))
}

// Render formats the comparison as a text table.
func (r *EngineReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Engine comparison (wall clock, %s scale, %d thread, best of %d, %s)\n",
		r.Scale, r.Threads, r.Reps, r.GoVersion)
	fmt.Fprintf(&b, "%-16s %12s %12s %9s\n", "workload", "tree", "compiled", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %12v %12v %8.2fx\n", row.Workload,
			time.Duration(row.TreeNS).Round(time.Microsecond),
			time.Duration(row.CompiledNS).Round(time.Microsecond),
			row.Speedup)
	}
	fmt.Fprintf(&b, "%-16s %12s %12s %8.2fx\n", "geomean", "", "", r.Geomean)
	return b.String()
}
