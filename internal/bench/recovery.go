package bench

// Recovery benefit and cost: region-scoped rollback recovery against
// the whole-program sequential fallback on violating inputs (the
// benefit: only the bad region loses its parallelism), and the
// incremental write-log snapshot against plain guarded execution on
// violation-free inputs (the cost: pre-image copying on the first
// write to each page, paid even when no rollback ever happens).

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"gdsx"
	"gdsx/internal/workloads"
)

// RecoveryRow compares the two recovery ladders on one violating
// adversarial workload: GuardedRun without RunOptions.Recover (discard
// the run, re-execute the whole program sequentially) versus with it
// (roll back and re-execute just the violating regions).
type RecoveryRow struct {
	Workload string `json:"workload"`
	// FallbackNS is the whole-program ladder: parallel attempt + full
	// sequential re-execution.
	FallbackNS int64 `json:"fallback_ns"`
	// RecoverNS is the region ladder: parallel run with the violating
	// regions rolled back and re-executed sequentially in place.
	RecoverNS int64 `json:"recover_ns"`
	// Speedup is FallbackNS / RecoverNS.
	Speedup float64 `json:"speedup"`
	// Recovered counts rolled-back regions in the recovery run, with
	// the pre-image volume the rollbacks restored.
	Recovered     int   `json:"recovered"`
	RollbackPages int   `json:"rollback_pages"`
	RollbackBytes int64 `json:"rollback_bytes"`
}

// RecoveryOverheadRow measures the snapshot cost on one violation-free
// standard workload: both runs are guarded; the recovery run
// additionally write-logs every parallel region.
type RecoveryOverheadRow struct {
	Workload string  `json:"workload"`
	BaseNS   int64   `json:"base_ns"`  // guarded, no snapshots
	SnapNS   int64   `json:"snap_ns"`  // guarded + region snapshots
	Overhead float64 `json:"overhead"` // SnapNS / BaseNS
	// SnapshotPages/Bytes total the write log across all committed
	// regions — the memory the no-violation path paid for insurance.
	SnapshotPages int   `json:"snapshot_pages"`
	SnapshotBytes int64 `json:"snapshot_bytes"`
}

// RecoveryReport is the full measurement, serialized to
// BENCH_recovery.json by gdsxbench -recovery.
type RecoveryReport struct {
	GoVersion string                `json:"go_version"`
	Scale     string                `json:"scale"`
	Threads   int                   `json:"threads"`
	Reps      int                   `json:"reps"`
	Violating []RecoveryRow         `json:"violating"`
	Overhead  []RecoveryOverheadRow `json:"overhead"`
	// GeomeanOverhead summarizes the violation-free snapshot cost.
	GeomeanOverhead float64 `json:"geomean_overhead"`
}

const recoveryReps = 3

// Recovery measures both sides of region-scoped recovery. The
// violating side runs the adversarial workloads' exposing inputs under
// both ladders and checks they produce identical (native) output; the
// overhead side runs the standard workloads' violation-free inputs
// guarded with and without snapshots.
func (h *Harness) Recovery() (*RecoveryReport, error) {
	threads := h.cfg.Threads[len(h.cfg.Threads)-1]
	rep := &RecoveryReport{
		GoVersion: runtime.Version(),
		Scale:     scaleName(h.cfg.Scale),
		Threads:   threads,
		Reps:      recoveryReps,
	}

	for _, a := range workloads.AdversarialAll() {
		prog, err := gdsx.Compile(a.Name+".c", a.Expose(h.cfg.Scale))
		if err != nil {
			return nil, fmt.Errorf("%s: compile: %w", a.Name, err)
		}
		tr, err := gdsx.Transform(prog, gdsx.TransformOptions{
			Guard:         true,
			ProfileSource: a.Profile(h.cfg.Scale),
			ProfileOpts:   h.run(gdsx.RunOptions{}),
		})
		if err != nil {
			return nil, fmt.Errorf("%s: transform: %w", a.Name, err)
		}
		opts := h.run(gdsx.RunOptions{Threads: threads})
		ropts := opts
		ropts.Recover = &gdsx.RecoverySpec{}

		row := RecoveryRow{Workload: a.Name}
		bestFall := time.Duration(math.MaxInt64)
		bestRec := time.Duration(math.MaxInt64)
		var fallOut, recOut string
		for i := 0; i < recoveryReps; i++ {
			start := time.Now()
			fres, err := gdsx.GuardedRun(prog, tr, opts)
			if d := time.Since(start); err == nil && d < bestFall {
				bestFall = d
			}
			if err != nil {
				return nil, fmt.Errorf("%s (fallback): %w", a.Name, err)
			}
			if !fres.FellBack {
				return nil, fmt.Errorf("%s: exposing input did not trip the guard", a.Name)
			}
			fallOut = fres.Result.Output

			start = time.Now()
			rres, err := gdsx.GuardedRun(prog, tr, ropts)
			if d := time.Since(start); err == nil && d < bestRec {
				bestRec = d
			}
			if err != nil {
				return nil, fmt.Errorf("%s (recover): %w", a.Name, err)
			}
			if rres.FellBack {
				return nil, fmt.Errorf("%s: recovery run still fell back whole-program", a.Name)
			}
			recOut = rres.Result.Output
			row.Recovered = rres.Recovered
			row.RollbackPages, row.RollbackBytes = 0, 0
			for _, r := range rres.Regions {
				row.RollbackPages += r.RollbackPages
				row.RollbackBytes += r.RollbackBytes
			}
		}
		if fallOut != recOut {
			return nil, fmt.Errorf("%s: recovery output diverges from fallback output", a.Name)
		}
		row.FallbackNS = bestFall.Nanoseconds()
		row.RecoverNS = bestRec.Nanoseconds()
		row.Speedup = float64(row.FallbackNS) / float64(row.RecoverNS)
		rep.Violating = append(rep.Violating, row)
	}

	logSum := 0.0
	for _, w := range workloads.All() {
		src := w.Source(h.cfg.Scale)
		psrc := w.Source(workloads.ProfileScale)
		if h.cfg.Scale == workloads.ProfileScale || h.cfg.Scale == workloads.Test {
			psrc = src
		}
		prog, err := gdsx.Compile(w.Name+".c", src)
		if err != nil {
			return nil, fmt.Errorf("%s: compile: %w", w.Name, err)
		}
		tr, err := gdsx.Transform(prog, gdsx.TransformOptions{
			Guard:         true,
			ProfileSource: psrc,
			ProfileOpts:   h.run(gdsx.RunOptions{}),
		})
		if err != nil {
			return nil, fmt.Errorf("%s: transform: %w", w.Name, err)
		}
		opts := h.run(gdsx.RunOptions{Threads: threads})
		ropts := opts
		ropts.Recover = &gdsx.RecoverySpec{}

		row := RecoveryOverheadRow{Workload: w.Name}
		// Warm the Go heap once, then alternate within each repetition
		// so the two configurations see the same allocator state.
		if _, err := gdsx.GuardedRun(prog, tr, opts); err != nil {
			return nil, fmt.Errorf("%s (warmup): %w", w.Name, err)
		}
		bestBase := time.Duration(math.MaxInt64)
		bestSnap := time.Duration(math.MaxInt64)
		var baseOut, snapOut string
		for i := 0; i < recoveryReps; i++ {
			start := time.Now()
			bres, err := gdsx.GuardedRun(prog, tr, opts)
			if d := time.Since(start); err == nil && d < bestBase {
				bestBase = d
			}
			if err != nil {
				return nil, fmt.Errorf("%s (base): %w", w.Name, err)
			}
			baseOut = bres.Result.Output

			start = time.Now()
			sres, err := gdsx.GuardedRun(prog, tr, ropts)
			if d := time.Since(start); err == nil && d < bestSnap {
				bestSnap = d
			}
			if err != nil {
				return nil, fmt.Errorf("%s (snapshot): %w", w.Name, err)
			}
			if sres.Recovered != 0 || sres.FellBack {
				return nil, fmt.Errorf("%s: rollback on a profiled input", w.Name)
			}
			snapOut = sres.Result.Output
			row.SnapshotPages, row.SnapshotBytes = 0, 0
			for _, r := range sres.Regions {
				row.SnapshotPages += r.SnapshotPages
				row.SnapshotBytes += r.SnapshotBytes
			}
		}
		if baseOut != snapOut {
			return nil, fmt.Errorf("%s: snapshot run output diverges", w.Name)
		}
		row.BaseNS = bestBase.Nanoseconds()
		row.SnapNS = bestSnap.Nanoseconds()
		row.Overhead = float64(row.SnapNS) / float64(row.BaseNS)
		logSum += math.Log(row.Overhead)
		rep.Overhead = append(rep.Overhead, row)
	}
	rep.GeomeanOverhead = math.Exp(logSum / float64(len(rep.Overhead)))
	return rep, nil
}

// Render formats the recovery report as text tables.
func (r *RecoveryReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Recovery vs whole-program fallback on violating inputs "+
		"(wall clock, %s scale, %d threads, best of %d, %s)\n",
		r.Scale, r.Threads, r.Reps, r.GoVersion)
	fmt.Fprintf(&b, "%-26s %12s %12s %8s %10s %12s\n",
		"workload", "fallback", "recover", "speedup", "rollbacks", "restored")
	for _, row := range r.Violating {
		fmt.Fprintf(&b, "%-26s %12v %12v %7.2fx %10d %11dB\n", row.Workload,
			time.Duration(row.FallbackNS).Round(time.Microsecond),
			time.Duration(row.RecoverNS).Round(time.Microsecond),
			row.Speedup, row.Recovered, row.RollbackBytes)
	}
	fmt.Fprintf(&b, "\nSnapshot overhead on violation-free runs (guarded both sides)\n")
	fmt.Fprintf(&b, "%-16s %12s %12s %9s %8s %12s\n",
		"workload", "no snapshot", "snapshot", "overhead", "pages", "logged")
	for _, row := range r.Overhead {
		fmt.Fprintf(&b, "%-16s %12v %12v %8.2fx %8d %11dB\n", row.Workload,
			time.Duration(row.BaseNS).Round(time.Microsecond),
			time.Duration(row.SnapNS).Round(time.Microsecond),
			row.Overhead, row.SnapshotPages, row.SnapshotBytes)
	}
	fmt.Fprintf(&b, "%-16s %12s %12s %8.2fx\n", "geomean", "", "", r.GeomeanOverhead)
	return b.String()
}
