package bench

import (
	"strings"
	"testing"

	"gdsx/internal/workloads"
)

func profileHarness() *Harness {
	cfg := DefaultConfig()
	cfg.Scale = workloads.ProfileScale
	return New(cfg)
}

func TestRunAllProfileScale(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run is not short")
	}
	h := profileHarness()
	rep, err := h.RunAll()
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(rep.Table4) != 8 || len(rep.Fig14) != 8 {
		t.Fatalf("incomplete report: %d table4 rows, %d fig14 rows", len(rep.Table4), len(rep.Fig14))
	}

	// Table 5 must match the paper exactly.
	for _, row := range rep.Table5 {
		if row.Privatized != row.Paper {
			t.Errorf("table5 %s: %d != paper %d", row.Name, row.Privatized, row.Paper)
		}
	}

	// Shape checks against the paper's qualitative results.
	for _, row := range rep.Fig9 {
		if row.Unopt < row.Opt {
			t.Errorf("fig9 %s: unoptimized (%.2f) should cost at least optimized (%.2f)",
				row.Name, row.Unopt, row.Opt)
		}
		if row.Opt < 1.0 {
			t.Errorf("fig9 %s: optimized slowdown %.2f below 1", row.Name, row.Opt)
		}
	}
	if rep.Fig9HMUn <= rep.Fig9HMOp {
		t.Errorf("fig9 harmonic means inverted: unopt %.2f <= opt %.2f", rep.Fig9HMUn, rep.Fig9HMOp)
	}

	for _, row := range rep.Fig10 {
		if row.Runtime < row.Expansion {
			t.Errorf("fig10 %s: runtime privatization (%.2f) should cost more than expansion (%.2f)",
				row.Name, row.Runtime, row.Expansion)
		}
	}

	// Expansion must win over runtime privatization in the speedup race
	// for most benchmarks (paper Figures 11 vs 13).
	wins := 0
	for i, row := range rep.Fig11 {
		if row.Loop[8] > rep.Fig13[i].Speedup[8] {
			wins++
		}
	}
	if wins < 6 {
		t.Errorf("expansion outruns runtime privatization on only %d/8 benchmarks", wins)
	}

	// Memory: expansion adds little on top of privatization needs
	// (paper Figure 14); both multiples must be >= 1.
	for _, row := range rep.Fig14 {
		for _, n := range rep.Threads {
			if row.Expansion[n] < 0.99 {
				t.Errorf("fig14 %s: expansion multiple %.2f below 1 at %d threads",
					row.Name, row.Expansion[n], n)
			}
		}
	}

	out := rep.Render()
	for _, want := range []string{"Table 4", "Table 5", "Figure 8", "Figure 9",
		"Figure 10", "Figure 11a", "Figure 11b", "Figure 12", "Figure 13", "Figure 14"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q", want)
		}
	}
	t.Logf("\n%s", out)
}
