package lexer

import (
	"testing"

	"gdsx/internal/token"
)

func kinds(src string) []token.Kind {
	l := New("t.c", src)
	var out []token.Kind
	for _, tok := range l.All() {
		out = append(out, tok.Kind)
	}
	return out
}

func TestOperators(t *testing.T) {
	src := "+ - * / % & | ^ << >> ~ && || ! == != < > <= >= = += -= *= /= %= &= |= ^= <<= >>= ++ -- -> . , ; : ? ( ) [ ] { }"
	want := []token.Kind{
		token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.AND, token.OR, token.XOR, token.SHL, token.SHR, token.NOT,
		token.LAND, token.LOR, token.LNOT,
		token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ,
		token.ASSIGN, token.ADDASSIGN, token.SUBASSIGN, token.MULASSIGN,
		token.QUOASSIGN, token.REMASSIGN, token.ANDASSIGN, token.ORASSIGN,
		token.XORASSIGN, token.SHLASSIGN, token.SHRASSIGN,
		token.INC, token.DEC, token.ARROW, token.DOT, token.COMMA,
		token.SEMICOLON, token.COLON, token.QUESTION,
		token.LPAREN, token.RPAREN, token.LBRACK, token.RBRACK,
		token.LBRACE, token.RBRACE, token.EOF,
	}
	got := kinds(src)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	l := New("t.c", "int foo while whilex parallel doacross")
	toks := l.All()
	if toks[0].Kind != token.KwInt {
		t.Fatal("int")
	}
	if toks[1].Kind != token.IDENT || toks[1].Lit != "foo" {
		t.Fatal("foo")
	}
	if toks[2].Kind != token.KwWhile {
		t.Fatal("while")
	}
	if toks[3].Kind != token.IDENT || toks[3].Lit != "whilex" {
		t.Fatal("whilex must be an identifier")
	}
	if toks[4].Kind != token.KwParallel || toks[5].Kind != token.KwDoacross {
		t.Fatal("parallel annotations")
	}
}

func TestNumbers(t *testing.T) {
	l := New("t.c", "0 42 0x7fff 1.5 2e10 3.25e-2 7u 8L 9UL 1.0f")
	toks := l.All()
	wantKind := []token.Kind{
		token.INT, token.INT, token.INT, token.FLOAT, token.FLOAT,
		token.FLOAT, token.INT, token.INT, token.INT, token.FLOAT,
	}
	wantLit := []string{"0", "42", "0x7fff", "1.5", "2e10", "3.25e-2", "7", "8", "9", "1.0"}
	for i := range wantKind {
		if toks[i].Kind != wantKind[i] || toks[i].Lit != wantLit[i] {
			t.Fatalf("tok %d = %v %q, want %v %q", i, toks[i].Kind, toks[i].Lit, wantKind[i], wantLit[i])
		}
	}
}

func TestCharAndString(t *testing.T) {
	l := New("t.c", `'a' '\n' '\\' "hi\tthere" ""`)
	toks := l.All()
	if toks[0].Lit != "a" || toks[1].Lit != "\n" || toks[2].Lit != "\\" {
		t.Fatalf("chars: %q %q %q", toks[0].Lit, toks[1].Lit, toks[2].Lit)
	}
	if toks[3].Kind != token.STRING || toks[3].Lit != "hi\tthere" {
		t.Fatalf("string: %q", toks[3].Lit)
	}
	if toks[4].Lit != "" {
		t.Fatalf("empty string: %q", toks[4].Lit)
	}
}

func TestComments(t *testing.T) {
	l := New("t.c", "a // line comment\nb /* block\ncomment */ c")
	toks := l.All()
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("tokens = %v", toks)
	}
	if toks[2].Pos.Line != 3 {
		t.Fatalf("c line = %d, want 3", toks[2].Pos.Line)
	}
}

func TestPositions(t *testing.T) {
	l := New("f.c", "ab\n  cd")
	toks := l.All()
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("ab pos %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Fatalf("cd pos %v", toks[1].Pos)
	}
	if toks[0].Pos.String() != "f.c:1:1" {
		t.Fatalf("pos string %q", toks[0].Pos.String())
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"\"unterminated",
		"'x",
		"/* unterminated",
		"@",
		"'\\q'",
	}
	for _, src := range cases {
		l := New("e.c", src)
		l.All()
		if len(l.Errors()) == 0 {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestEOFIsSticky(t *testing.T) {
	l := New("t.c", "x")
	l.Next()
	for i := 0; i < 3; i++ {
		if l.Next().Kind != token.EOF {
			t.Fatal("EOF must repeat")
		}
	}
}
