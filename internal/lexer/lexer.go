// Package lexer implements a hand-written scanner for MiniC source.
// It produces token.Token values and reports malformed input with
// positions attached.
package lexer

import (
	"fmt"
	"strings"

	"gdsx/internal/token"
)

// Lexer scans a MiniC source buffer. Create one with New and call Next
// until it returns a token of kind token.EOF.
type Lexer struct {
	src  string
	file string
	off  int // byte offset of the next unread character
	line int
	col  int
	errs []error
}

// New returns a Lexer over src. The file name is used only in positions.
func New(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Errors returns all lexical errors encountered so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Line: l.line, Col: l.col}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func isLetter(c byte) bool {
	return c == '_' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z'
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F'
}

// Next returns the next token. After the end of input it returns EOF
// tokens indefinitely.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.peek()
	switch {
	case isLetter(c):
		return l.scanIdent(pos)
	case isDigit(c):
		return l.scanNumber(pos)
	case c == '\'':
		return l.scanChar(pos)
	case c == '"':
		return l.scanString(pos)
	}
	return l.scanOperator(pos)
}

// All scans the entire input and returns the token stream, terminated
// by a single EOF token.
func (l *Lexer) All() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (l *Lexer) scanIdent(pos token.Pos) token.Token {
	start := l.off
	for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
		l.advance()
	}
	lit := l.src[start:l.off]
	if kw, ok := token.Keywords[lit]; ok {
		return token.Token{Kind: kw, Pos: pos}
	}
	return token.Token{Kind: token.IDENT, Pos: pos, Lit: lit}
}

func (l *Lexer) scanNumber(pos token.Pos) token.Token {
	start := l.off
	kind := token.INT
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		if !isHexDigit(l.peek()) {
			l.errorf(pos, "malformed hex literal")
		}
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
		return token.Token{Kind: token.INT, Pos: pos, Lit: l.src[start:l.off]}
	}
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peek2()) {
		kind = token.FLOAT
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		next := l.peek2()
		if isDigit(next) || next == '+' || next == '-' {
			kind = token.FLOAT
			l.advance() // e
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			if !isDigit(l.peek()) {
				l.errorf(pos, "malformed exponent")
			}
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
	}
	// Accept and discard C suffixes (U, L, UL, f) so real-world
	// constants paste cleanly into workloads.
	for l.peek() == 'u' || l.peek() == 'U' || l.peek() == 'l' || l.peek() == 'L' ||
		(kind == token.FLOAT && (l.peek() == 'f' || l.peek() == 'F')) {
		l.advance()
	}
	lit := strings.TrimRight(l.src[start:l.off], "uUlLfF")
	return token.Token{Kind: kind, Pos: pos, Lit: lit}
}

func (l *Lexer) scanEscape(pos token.Pos) (byte, bool) {
	l.advance() // backslash
	if l.off >= len(l.src) {
		l.errorf(pos, "unterminated escape")
		return 0, false
	}
	c := l.advance()
	switch c {
	case 'n':
		return '\n', true
	case 't':
		return '\t', true
	case 'r':
		return '\r', true
	case '0':
		return 0, true
	case '\\':
		return '\\', true
	case '\'':
		return '\'', true
	case '"':
		return '"', true
	}
	l.errorf(pos, "unknown escape \\%c", c)
	return c, true
}

func (l *Lexer) scanChar(pos token.Pos) token.Token {
	l.advance() // opening quote
	var val byte
	if l.off >= len(l.src) {
		l.errorf(pos, "unterminated char literal")
		return token.Token{Kind: token.ILLEGAL, Pos: pos}
	}
	if l.peek() == '\\' {
		v, ok := l.scanEscape(pos)
		if !ok {
			return token.Token{Kind: token.ILLEGAL, Pos: pos}
		}
		val = v
	} else {
		val = l.advance()
	}
	if l.peek() != '\'' {
		l.errorf(pos, "unterminated char literal")
		return token.Token{Kind: token.ILLEGAL, Pos: pos}
	}
	l.advance()
	return token.Token{Kind: token.CHAR, Pos: pos, Lit: string(val)}
}

func (l *Lexer) scanString(pos token.Pos) token.Token {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		if l.off >= len(l.src) || l.peek() == '\n' {
			l.errorf(pos, "unterminated string literal")
			return token.Token{Kind: token.ILLEGAL, Pos: pos}
		}
		if l.peek() == '"' {
			l.advance()
			return token.Token{Kind: token.STRING, Pos: pos, Lit: sb.String()}
		}
		if l.peek() == '\\' {
			v, ok := l.scanEscape(pos)
			if !ok {
				return token.Token{Kind: token.ILLEGAL, Pos: pos}
			}
			sb.WriteByte(v)
			continue
		}
		sb.WriteByte(l.advance())
	}
}

func (l *Lexer) scanOperator(pos token.Pos) token.Token {
	c := l.advance()
	two := func(next byte, with, without token.Kind) token.Kind {
		if l.peek() == next {
			l.advance()
			return with
		}
		return without
	}
	var k token.Kind
	switch c {
	case '+':
		switch l.peek() {
		case '+':
			l.advance()
			k = token.INC
		case '=':
			l.advance()
			k = token.ADDASSIGN
		default:
			k = token.ADD
		}
	case '-':
		switch l.peek() {
		case '-':
			l.advance()
			k = token.DEC
		case '=':
			l.advance()
			k = token.SUBASSIGN
		case '>':
			l.advance()
			k = token.ARROW
		default:
			k = token.SUB
		}
	case '*':
		k = two('=', token.MULASSIGN, token.MUL)
	case '/':
		k = two('=', token.QUOASSIGN, token.QUO)
	case '%':
		k = two('=', token.REMASSIGN, token.REM)
	case '&':
		switch l.peek() {
		case '&':
			l.advance()
			k = token.LAND
		case '=':
			l.advance()
			k = token.ANDASSIGN
		default:
			k = token.AND
		}
	case '|':
		switch l.peek() {
		case '|':
			l.advance()
			k = token.LOR
		case '=':
			l.advance()
			k = token.ORASSIGN
		default:
			k = token.OR
		}
	case '^':
		k = two('=', token.XORASSIGN, token.XOR)
	case '~':
		k = token.NOT
	case '!':
		k = two('=', token.NEQ, token.LNOT)
	case '=':
		k = two('=', token.EQL, token.ASSIGN)
	case '<':
		switch l.peek() {
		case '<':
			l.advance()
			k = two('=', token.SHLASSIGN, token.SHL)
		case '=':
			l.advance()
			k = token.LEQ
		default:
			k = token.LSS
		}
	case '>':
		switch l.peek() {
		case '>':
			l.advance()
			k = two('=', token.SHRASSIGN, token.SHR)
		case '=':
			l.advance()
			k = token.GEQ
		default:
			k = token.GTR
		}
	case '.':
		k = token.DOT
	case ',':
		k = token.COMMA
	case ';':
		k = token.SEMICOLON
	case ':':
		k = token.COLON
	case '?':
		k = token.QUESTION
	case '(':
		k = token.LPAREN
	case ')':
		k = token.RPAREN
	case '[':
		k = token.LBRACK
	case ']':
		k = token.RBRACK
	case '{':
		k = token.LBRACE
	case '}':
		k = token.RBRACE
	default:
		l.errorf(pos, "illegal character %q", c)
		k = token.ILLEGAL
	}
	return token.Token{Kind: k, Pos: pos}
}
