package gdsx

// End-to-end validation of the acceptance path: a guarded, recovering
// run of the multi-region adversarial workload must export a Chrome
// trace-event JSON that (a) parses, (b) satisfies the trace-event
// schema Perfetto loads, and (c) contains the region, guard-verdict
// and rollback events the run actually went through. The metrics and
// hot-site surfaces are exercised on the same run.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gdsx/internal/workloads"
)

// chromeTrace mirrors the Chrome trace-event JSON object format.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   *float64       `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	Args map[string]any `json:"args"`
}

func TestObsTraceEndToEnd(t *testing.T) {
	a := workloads.AdversarialMultiRegion()
	native, err := Compile(a.Name+".c", a.Expose(workloads.Test))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	tr, err := Transform(native, TransformOptions{
		Guard:         true,
		ProfileSource: a.Profile(workloads.Test),
	})
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	o := NewObserver(true) // hot profiler on: exercise every surface
	o.IterSpans = true
	// Static scheduling: which rule the violating region trips first
	// depends on the iteration-to-thread mapping, and this test asserts
	// the exact carried-flow label the static map produces.
	res, err := GuardedRun(native, tr, RunOptions{
		Threads: 4, Recover: &RecoverySpec{}, Obs: o, Sched: SchedStatic,
	})
	if err != nil {
		t.Fatalf("guarded run: %v", err)
	}
	if res.FellBack || res.Recovered != 1 {
		t.Fatalf("want exactly one recovered region, got FellBack=%v Recovered=%d",
			res.FellBack, res.Recovered)
	}

	// (a) the export parses as trace-event JSON.
	var buf bytes.Buffer
	if err := o.Trace.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var trace chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}

	// (b) every event satisfies the schema: a name, a known phase, and
	// the required ts/pid/tid fields (metadata events carry ph "M").
	phases := map[string]bool{"B": true, "E": true, "X": true, "i": true, "M": true}
	counts := map[string]int{}
	for i, ev := range trace.TraceEvents {
		if ev.Name == "" {
			t.Fatalf("event %d has no name: %+v", i, ev)
		}
		if !phases[ev.Ph] {
			t.Fatalf("event %d (%s) has unknown phase %q", i, ev.Name, ev.Ph)
		}
		if ev.TS == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d (%s) lacks ts/pid/tid: %s", i, ev.Name, buf.Bytes()[:200])
		}
		if ev.Ph == "X" && ev.Dur < 0 {
			t.Fatalf("event %d (%s) has negative duration", i, ev.Name)
		}
		counts[ev.Name]++
	}

	// (c) the events the run must have gone through: three regions (one
	// rolled back and re-run sequentially), a verdict per safe point, a
	// rollback for the violating region, commits for the clean ones.
	for name, min := range map[string]int{
		"region":            2, // begin/end pairs; at least one full region
		"guard-verdict":     3,
		"rollback":          1,
		"checkpoint-commit": 2,
		"expand":            3,
		"iter":              1,
		"thread_name":       1, // metadata present
	} {
		if counts[name] < min {
			t.Fatalf("trace has %d %q events, want >= %d (counts: %v)",
				counts[name], name, min, counts)
		}
	}

	// The violating region's verdict names the rule the guard found.
	found := false
	for _, ev := range trace.TraceEvents {
		if ev.Name == "guard-verdict" && ev.Args["label"] == "carried-flow" {
			found = true
		}
	}
	if !found {
		t.Fatal("no guard-verdict event labelled carried-flow")
	}

	// Metrics surface: the registry renders, and the recovery counters
	// agree with the result.
	var mbuf bytes.Buffer
	if err := o.Metrics.Render(&mbuf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	for _, want := range []string{
		"recover.rollbacks", "guard.violations", "interp.regions.parallel",
		"mem.allocs",
	} {
		if !strings.Contains(mbuf.String(), want) {
			t.Fatalf("metrics output lacks %q:\n%s", want, mbuf.String())
		}
	}
	PublishRegionStats(o.Metrics, res.Regions)
	PublishGuardReports(o.Metrics, res.Violations)
	snap := o.Metrics.Snapshot()
	if got := snap.Counters["region.loop2.rollbacks"]; got != 1 {
		t.Fatalf("region.loop2.rollbacks = %d, want 1", got)
	}
	if snap.Counters["guard.report.rule.carried-flow"] == 0 {
		t.Fatal("guard report rule counter missing")
	}

	// Hot-site surface: the profiler attributed cost to resolvable
	// sites of the expanded program, including per-copy attribution.
	rep := o.Hot.Report()
	if len(rep) == 0 {
		t.Fatal("hot profiler recorded nothing")
	}
	frames := HotSiteFrames(res.Expanded)
	resolved, perCopy := 0, 0
	for _, r := range rep {
		if fs := frames(r.Site); len(fs) > 0 {
			resolved++
		}
		if r.Copy >= 0 {
			perCopy++
		}
	}
	if resolved == 0 {
		t.Fatal("no hot site resolved to a source position")
	}
	if perCopy == 0 {
		t.Fatal("no hot site attributed to an expanded copy")
	}
	var fbuf bytes.Buffer
	if err := o.Hot.Folded(&fbuf, frames); err != nil {
		t.Fatalf("Folded: %v", err)
	}
	if !strings.Contains(fbuf.String(), ";copy ") {
		t.Fatalf("folded stacks lack copy frames:\n%s", fbuf.String())
	}
}

// TestObsHealthReportRendering pins the migrated health report: the
// per-region records render through the metrics formatter, replacing
// the old ad-hoc fmt.Fprintf block in cmd/gdsx.
func TestObsHealthReportRendering(t *testing.T) {
	a := workloads.AdversarialMultiRegion()
	native, err := Compile(a.Name+".c", a.Expose(workloads.Test))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	tr, err := Transform(native, TransformOptions{
		Guard:         true,
		ProfileSource: a.Profile(workloads.Test),
	})
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	res, err := GuardedRun(native, tr, RunOptions{Threads: 2, Recover: &RecoverySpec{}})
	if err != nil {
		t.Fatalf("guarded run: %v", err)
	}
	var buf bytes.Buffer
	if err := RenderHealthReport(&buf, res); err != nil {
		t.Fatalf("RenderHealthReport: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"region.loop1.parallel_runs", "region.loop2.rollbacks",
		"region.loop3.parallel_runs", "guard.report.rule.carried-flow",
		"region.loop2.demoted",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("health report lacks %q:\n%s", want, out)
		}
	}
}
