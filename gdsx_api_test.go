package gdsx

import (
	"encoding/json"
	"strings"
	"testing"

	"gdsx/internal/ddg"
)

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("x.c", "int main( {"); err == nil {
		t.Fatal("parse error not reported")
	}
	if _, err := Compile("x.c", "int main() { return nope; }"); err == nil ||
		!strings.Contains(err.Error(), "undefined") {
		t.Fatalf("sema error not reported: %v", err)
	}
}

func TestParallelLoopsOrdering(t *testing.T) {
	prog, err := Compile("x.c", `
int main() {
    int i;
    int a[4];
    int b[4];
    for (i = 0; i < 4; i++) { a[i] = i; }
    parallel for (i = 0; i < 4; i++) { a[i] = i; }
    parallel doacross for (i = 0; i < 4; i++) { b[i] = i; }
    return a[0] + b[0];
}`)
	if err != nil {
		t.Fatal(err)
	}
	ids := prog.ParallelLoops()
	if len(ids) != 2 || ids[0] >= ids[1] {
		t.Fatalf("ParallelLoops = %v", ids)
	}
	if _, err := prog.Loop(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Loop(9999); err == nil {
		t.Fatal("Loop(9999) should fail")
	}
}

func TestPrintReparses(t *testing.T) {
	prog, err := Compile("x.c", zptrSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile("x2.c", prog.Print()); err != nil {
		t.Fatalf("printed program does not recompile: %v", err)
	}
}

func TestTransformRejectsSequentialProgram(t *testing.T) {
	prog, err := Compile("x.c", "int main() { return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Transform(prog, TransformOptions{}); err == nil {
		t.Fatal("transform of loop-free program should fail")
	}
}

func TestTransformDoesNotMutateInput(t *testing.T) {
	prog, err := Compile("x.c", zptrSrc)
	if err != nil {
		t.Fatal(err)
	}
	before := prog.Print()
	if _, err := Transform(prog, TransformOptions{}); err != nil {
		t.Fatal(err)
	}
	if prog.Print() != before {
		t.Fatal("Transform mutated the input program")
	}
	// And the original still runs.
	if _, err := prog.Run(RunOptions{Threads: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileSourceMismatchDetected(t *testing.T) {
	prog, err := Compile("x.c", zptrSrc)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Transform(prog, TransformOptions{
		ProfileSource: "int main() { return 0; }",
	})
	if err == nil || !strings.Contains(err.Error(), "structurally identical") {
		t.Fatalf("mismatched profile input not detected: %v", err)
	}
}

func TestRunSourceExitAndOutput(t *testing.T) {
	res, err := RunSource("x.c", `
int main() {
    print_str("hi");
    return 3;
}`, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != 3 || res.Output != "hi" {
		t.Fatalf("res = %+v", res)
	}
}

// The paper's "graph from the programmer" path (§2): a profiled graph
// serialized to JSON, round-tripped (as a programmer would inspect and
// edit it), and fed back through TransformOptions.Graphs must produce
// the same transformed program as direct profiling.
func TestUserSuppliedGraph(t *testing.T) {
	prog, err := Compile("zptr.c", zptrSrc)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Transform(prog, TransformOptions{})
	if err != nil {
		t.Fatal(err)
	}

	loopID := prog.ParallelLoops()[0]
	pr, err := prog.ProfileLoop(loopID, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(pr.Graph)
	if err != nil {
		t.Fatal(err)
	}
	var back ddg.Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}

	viaUser, err := Transform(prog, TransformOptions{Graphs: map[int]*ddg.Graph{loopID: &back}})
	if err != nil {
		t.Fatal(err)
	}
	if viaUser.Source != direct.Source {
		t.Fatalf("user-supplied graph produced a different program:\n--- direct ---\n%s\n--- user ---\n%s",
			direct.Source, viaUser.Source)
	}
}
