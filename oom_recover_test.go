package gdsx

// Out-of-memory inside a parallel region must ride the recovery
// ladder like any other worker fault: the region rolls back to its
// entry snapshot — releasing the attempt's allocations, worker stacks
// included — and re-executes sequentially with the quota intact. These
// tests pin that behaviour at the interpreter level, through
// GuardedRun, and across pooled-memory reuse.

import (
	"errors"
	"strings"
	"testing"

	"gdsx/internal/interp"
)

// oomLeakSrc allocates 8KiB per iteration and never frees inside the
// loop, so live bytes grow monotonically through the region: a
// live-byte limit below the loop's total footprint trips OOM
// mid-region under every scheduler, deterministically.
const oomLeakSrc = `
int N = 64;

int main() {
	long *out = (long*)malloc(N * 8);
	int i;
	parallel for (i = 0; i < N; i++) {
		long *scratch = (long*)malloc(8192);
		scratch[0] = (long)i * 17;
		out[i] = scratch[0] + 3;
	}
	long s = 0;
	for (i = 0; i < N; i++) { s = s + out[i]; }
	print_long(s);
	print_char('\n');
	return 0;
}
`

// TestWorkerOOMRecoveredByRegionRollback injects an allocation
// failure into a parallel worker (FailAlloc counts allocations, so the
// fault lands inside the region deterministically) with region
// recovery enabled: the region must roll back once and re-execute
// sequentially, producing native output — under both engines and all
// three schedulers.
func TestWorkerOOMRecoveredByRegionRollback(t *testing.T) {
	engines := []struct {
		name string
		eng  Engine
	}{{"compiled", EngineCompiled}, {"tree", EngineTree}}
	for _, ps := range parityScheds {
		for _, en := range engines {
			t.Run(ps.name+"/"+en.name, func(t *testing.T) {
				opts := RunOptions{Threads: 4, Sched: ps.pol, Engine: en.eng}
				probe, err := RunSource("pfault.c", parallelFaultSrc, opts)
				if err != nil {
					t.Fatalf("probe run: %v", err)
				}
				// The run's last 64 allocations are the workers' scratch
				// blocks, so a countdown 5 short of the total fires inside
				// the region no matter how iterations were scheduled.
				opts.FailAlloc = probe.MemStats.Allocs - 5
				opts.Recover = &RecoverySpec{}
				res, err := RunSource("pfault.c", parallelFaultSrc, opts)
				if err != nil {
					t.Fatalf("recovered run: %v", err)
				}
				if res.Output != probe.Output {
					t.Fatalf("recovered output %q, want %q", res.Output, probe.Output)
				}
				var rollbacks, seqRuns int
				for _, r := range res.Regions {
					rollbacks += r.Rollbacks
					seqRuns += r.SeqRuns
				}
				if rollbacks != 1 || seqRuns != 1 {
					t.Fatalf("want exactly one rollback + sequential re-run, got %+v", res.Regions)
				}
			})
		}
	}
}

// TestGuardedRunWorkerOOMRecoversInPlace runs the same injection
// through GuardedRun on a cleanly-profiled transform: the guarded run
// must absorb the OOM with a region rollback (no whole-program
// fallback, no violation) and still produce native output.
func TestGuardedRunWorkerOOMRecoversInPlace(t *testing.T) {
	native, err := Compile("pfault.c", parallelFaultSrc)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Transform(native, TransformOptions{Guard: true, ProfileSource: parallelFaultSrc})
	if err != nil {
		t.Fatal(err)
	}
	want, err := native.Run(RunOptions{ForceSequential: true})
	if err != nil {
		t.Fatal(err)
	}
	probe, err := RunSource("pfault-exp.c", tr.Source, RunOptions{Threads: 4})
	if err != nil {
		t.Fatalf("probe run: %v", err)
	}
	res, err := GuardedRun(native, tr, RunOptions{
		Threads:   4,
		Recover:   &RecoverySpec{},
		FailAlloc: probe.MemStats.Allocs - 5,
	})
	if err != nil {
		t.Fatalf("guarded run: %v", err)
	}
	if res.FellBack {
		t.Fatal("region recovery should have absorbed the OOM without a whole-program fallback")
	}
	if res.Violation != nil {
		t.Fatalf("an OOM fault must not be reported as a guard violation: %v", res.Violation)
	}
	if res.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", res.Recovered)
	}
	if res.Result.Output != want.Output {
		t.Fatalf("output %q, want native %q", res.Result.Output, want.Output)
	}
}

// TestMemLimitOOMRecoveredSequentially sets a quota the parallel
// attempt must exceed (4 extra worker stacks plus the leaked scratch)
// but the rolled-back sequential re-execution fits (rollback releases
// the attempt's allocations, worker stacks included): the run must
// succeed with native output on every scheduler.
func TestMemLimitOOMRecoveredSequentially(t *testing.T) {
	want, err := RunSource("oomleak.c", oomLeakSrc, RunOptions{ForceSequential: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range parityScheds {
		t.Run(ps.name, func(t *testing.T) {
			res, err := RunSource("oomleak.c", oomLeakSrc, RunOptions{
				Threads:   4,
				Sched:     ps.pol,
				StackSize: 64 << 10,
				// Sequential footprint: one 64KiB stack + 64*8KiB scratch
				// ≈ 580KiB, under the limit. Parallel adds 4 worker stacks
				// (256KiB), so the attempt overshoots mid-region.
				MemLimit: 700 << 10,
				Recover:  &RecoverySpec{},
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Output != want.Output {
				t.Fatalf("output %q, want native %q", res.Output, want.Output)
			}
			var rollbacks, seqRuns int
			for _, r := range res.Regions {
				rollbacks += r.Rollbacks
				seqRuns += r.SeqRuns
			}
			if rollbacks != 1 || seqRuns != 1 {
				t.Fatalf("quota OOM must cause exactly one rollback + seq re-run: %+v", res.Regions)
			}
		})
	}
}

// TestMemLimitOOMLeavesMemoryPoolable: a hard OOM abort (no recovery)
// must surface as a structured runtime error and leave a pooled
// memory fully reusable after Reset — the service's per-request
// lifecycle under quota kills.
func TestMemLimitOOMLeavesMemoryPoolable(t *testing.T) {
	pool := NewMemory(8 << 20)
	_, err := RunSource("oomleak.c", oomLeakSrc, RunOptions{
		Threads:   4,
		StackSize: 64 << 10,
		MemLimit:  500 << 10, // below even the sequential footprint
		Memory:    pool,
	})
	if err == nil {
		t.Fatal("expected a quota OOM")
	}
	var re interp.RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T, want interp.RuntimeError: %v", err, err)
	}
	if !strings.Contains(re.Msg, "out of memory") {
		t.Fatalf("message %q lacks the OOM cause", re.Msg)
	}

	pool.Reset()
	want, err := RunSource("oomleak.c", oomLeakSrc, RunOptions{ForceSequential: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSource("oomleak.c", oomLeakSrc, RunOptions{
		Threads:   4,
		StackSize: 64 << 10,
		Memory:    pool,
		Recover:   &RecoverySpec{},
	})
	if err != nil {
		t.Fatalf("run on reset pooled memory: %v", err)
	}
	if res.Output != want.Output {
		t.Fatalf("pooled rerun output %q, want %q", res.Output, want.Output)
	}
}
