package gdsx

// The allocator's free-list scan policy (next-fit by default,
// first-fit as the reference) changes where blocks land in the
// simulated address space. No program-visible behavior may depend on
// that layout: this test runs allocation-heavy workloads under both
// policies and requires identical output, exit code and instruction
// counters. Only the allocator's own placement statistics (high-water
// marks) may differ.

import (
	"testing"

	"gdsx/internal/interp"
	"gdsx/internal/mem"
	"gdsx/internal/workloads"
)

func runWithPolicy(t *testing.T, src string, p mem.ScanPolicy) Result {
	t.Helper()
	prog, err := Compile("wl.c", src)
	if err != nil {
		t.Fatal(err)
	}
	m := prog.NewMachine(RunOptions{Threads: 1})
	m.Mem().SetScanPolicy(p)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestScanPolicyLayoutIndependence(t *testing.T) {
	// dijkstra and 256.bzip2 are the heaviest malloc/free users in the
	// suite; the transformed form of dijkstra additionally allocates the
	// per-thread expanded copies.
	for _, name := range []string{"dijkstra", "256.bzip2"} {
		w := workloads.ByName(name)
		src := w.Source(workloads.Test)
		t.Run(name, func(t *testing.T) {
			next := runWithPolicy(t, src, mem.NextFit)
			first := runWithPolicy(t, src, mem.FirstFit)
			if next.Output != first.Output {
				t.Errorf("output differs between scan policies")
			}
			if next.Exit != first.Exit {
				t.Errorf("exit %d != %d", next.Exit, first.Exit)
			}
			if next.Counters[interp.CatWork] != first.Counters[interp.CatWork] {
				t.Errorf("work counter %d != %d between scan policies",
					next.Counters[interp.CatWork], first.Counters[interp.CatWork])
			}
			if next.MemStats.Allocs != first.MemStats.Allocs {
				t.Errorf("allocation count %d != %d between scan policies",
					next.MemStats.Allocs, first.MemStats.Allocs)
			}
		})
	}
	// Expanded program: the transformation's span arithmetic must hold
	// wherever the expanded copies land.
	w := workloads.ByName("dijkstra")
	prog, err := Compile("dijkstra.c", w.Source(workloads.Test))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Transform(prog, TransformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	next := runWithPolicy(t, tr.Source, mem.NextFit)
	first := runWithPolicy(t, tr.Source, mem.FirstFit)
	if next.Output != first.Output || next.Exit != first.Exit {
		t.Errorf("expanded dijkstra diverges between scan policies")
	}
}
