package gdsx_test

// One testing.B benchmark per table and figure of the paper's
// evaluation section. Each benchmark regenerates its experiment through
// the harness (deterministic, simulated timing) and reports the
// headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation end to end. Workload data is
// computed once and shared across benchmarks; iterations after the
// first hit the harness cache. Benchmarks run at profile scale so the
// whole suite stays fast; `go run ./cmd/gdsxbench` regenerates the same
// tables at full bench scale.

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"gdsx"
	"gdsx/internal/bench"
	"gdsx/internal/workloads"
)

var (
	harnessOnce sync.Once
	harness     *bench.Harness
)

func sharedHarness(b *testing.B) *bench.Harness {
	harnessOnce.Do(func() {
		cfg := bench.DefaultConfig()
		cfg.Scale = workloads.ProfileScale
		harness = bench.New(cfg)
	})
	return harness
}

func BenchmarkTable4Characteristics(b *testing.B) {
	h := sharedHarness(b)
	var pct float64
	for i := 0; i < b.N; i++ {
		rows, err := h.Table4()
		if err != nil {
			b.Fatal(err)
		}
		pct = 0
		for _, r := range rows {
			pct += r.TimePct
		}
		pct /= float64(len(rows))
	}
	b.ReportMetric(pct, "mean-loop-%time")
}

func BenchmarkTable5Privatized(b *testing.B) {
	h := sharedHarness(b)
	var total int
	for i := 0; i < b.N; i++ {
		rows, err := h.Table5()
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, r := range rows {
			total += r.Privatized
		}
	}
	b.ReportMetric(float64(total), "structures")
}

func BenchmarkFigure8AccessBreakdown(b *testing.B) {
	h := sharedHarness(b)
	var expandable float64
	for i := 0; i < b.N; i++ {
		rows, err := h.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		expandable = 0
		for _, r := range rows {
			expandable += r.Expandable
		}
		expandable /= float64(len(rows))
	}
	b.ReportMetric(expandable, "mean-expandable-%")
}

func BenchmarkFigure9Overhead(b *testing.B) {
	h := sharedHarness(b)
	var un, op float64
	for i := 0; i < b.N; i++ {
		var err error
		_, un, op, err = h.Figure9()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(un, "hm-slowdown-unopt")
	b.ReportMetric(op, "hm-slowdown-opt")
}

func BenchmarkFigure10VsRuntimePriv(b *testing.B) {
	h := sharedHarness(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := h.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		ratio = 0
		for _, r := range rows {
			ratio += r.Runtime / r.Expansion
		}
		ratio /= float64(len(rows))
	}
	b.ReportMetric(ratio, "rtpriv/expansion-overhead")
}

func BenchmarkFigure11Speedup(b *testing.B) {
	h := sharedHarness(b)
	var hm4, hm8 float64
	for i := 0; i < b.N; i++ {
		_, hm, err := h.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		hm4, hm8 = hm[4], hm[8]
	}
	b.ReportMetric(hm4, "hm-total-speedup@4")
	b.ReportMetric(hm8, "hm-total-speedup@8")
}

func BenchmarkFigure12Breakdown(b *testing.B) {
	h := sharedHarness(b)
	var wait float64
	for i := 0; i < b.N; i++ {
		rows, err := h.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		wait = 0
		for _, r := range rows {
			wait += r.Wait
		}
		wait /= float64(len(rows))
	}
	b.ReportMetric(wait, "mean-wait-%@8")
}

func BenchmarkFigure13RuntimePrivSpeedup(b *testing.B) {
	h := sharedHarness(b)
	var mean float64
	for i := 0; i < b.N; i++ {
		rows, err := h.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		mean = 0
		for _, r := range rows {
			mean += r.Speedup[8]
		}
		mean /= float64(len(rows))
	}
	b.ReportMetric(mean, "mean-speedup@8")
}

func BenchmarkFigure14Memory(b *testing.B) {
	h := sharedHarness(b)
	var exp8 float64
	for i := 0; i < b.N; i++ {
		rows, err := h.Figure14()
		if err != nil {
			b.Fatal(err)
		}
		exp8 = 0
		for _, r := range rows {
			exp8 += r.Expansion[8]
		}
		exp8 /= float64(len(rows))
	}
	b.ReportMetric(exp8, "mean-exp-mem-multiple@8")
}

func BenchmarkAblationSyncPlacement(b *testing.B) {
	h := sharedHarness(b)
	var coarse8 float64
	for i := 0; i < b.N; i++ {
		rows, err := h.AblationSync()
		if err != nil {
			b.Fatal(err)
		}
		coarse8 = 0
		for _, r := range rows {
			coarse8 += r.CoarseSpeedup8
		}
		coarse8 /= float64(len(rows))
	}
	b.ReportMetric(coarse8, "mean-coarse-speedup@8")
}

func BenchmarkAblationBaseHoisting(b *testing.B) {
	h := sharedHarness(b)
	var flat float64
	for i := 0; i < b.N; i++ {
		rows, err := h.AblationHoist()
		if err != nil {
			b.Fatal(err)
		}
		flat = 0
		for _, r := range rows {
			flat += r.Unhoisted
		}
		flat /= float64(len(rows))
	}
	b.ReportMetric(flat, "mean-unhoisted-slowdown")
}

// BenchmarkEngineComparison measures real wall-clock execution of
// every workload under each execution engine, one sub-benchmark per
// (workload, engine) pair:
//
//	go test -bench=EngineComparison
//
// compares tree-walking dispatch against the closure-compiling engine
// on this host. Programs run single-threaded so the measurement is
// pure dispatch cost; `gdsxbench -bench-engines` produces the same
// comparison at full bench scale with the geomean speedup.
func BenchmarkEngineComparison(b *testing.B) {
	for _, w := range workloads.All() {
		prog, err := gdsx.Compile(w.Name+".c", w.Source(workloads.Test))
		if err != nil {
			b.Fatal(err)
		}
		for _, eng := range []gdsx.Engine{gdsx.EngineTree, gdsx.EngineCompiled} {
			b.Run(w.Name+"/"+eng.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := prog.Run(gdsx.RunOptions{Threads: 1, Engine: eng}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkWallClockParallel measures REAL wall-clock execution of a
// transformed workload at 1 vs GOMAXPROCS threads. On a multi-core
// host the ratio approaches the simulated speedups; on a single-core
// host (like the reference environment, which is why the evaluation
// uses the schedule simulator) it stays near 1.
func BenchmarkWallClockParallel(b *testing.B) {
	w := workloads.ByName("md5")
	prog, err := gdsx.Compile("md5.c", w.Source(workloads.ProfileScale))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := gdsx.Transform(prog, gdsx.TransformOptions{})
	if err != nil {
		b.Fatal(err)
	}
	threads := runtime.GOMAXPROCS(0)
	xprog, err := gdsx.Compile("md5-x.c", tr.Source)
	if err != nil {
		b.Fatal(err)
	}
	var seq, par time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := xprog.Run(gdsx.RunOptions{Threads: 1}); err != nil {
			b.Fatal(err)
		}
		seq += time.Since(t0)
		t1 := time.Now()
		if _, err := xprog.Run(gdsx.RunOptions{Threads: threads}); err != nil {
			b.Fatal(err)
		}
		par += time.Since(t1)
	}
	b.ReportMetric(float64(seq)/float64(par), "wallclock-speedup")
	b.ReportMetric(float64(threads), "gomaxprocs")
}
